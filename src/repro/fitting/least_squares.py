"""The least-squares fitting engine (Eq. 8).

``fit_least_squares`` minimizes ``Σᵢ (R(tᵢ) − P(tᵢ))²`` over the
model's bounded parameter space with scipy's trust-region-reflective
least squares, trying every multi-start point and keeping the best
optimum. The starts are independent problems, so they can run on any
:class:`~repro.parallel.FitExecutor` backend; results are reduced in
start order, making the outcome identical on every backend.

Two layers keep the engine cheap:

* **Analytic Jacobians** — families that expose
  :meth:`~repro.models.base.ResilienceModel.prediction_jacobian` in
  closed form (the quadratic, the Hjorth competing-risks model, and all
  Exp/Weibull mixtures under every trend) hand scipy an exact ``jac=``
  callable instead of letting it rebuild the Jacobian by finite
  differences, cutting residual evaluations by roughly the parameter
  count.
* **Fit caching** — results are memoized in a content-addressed
  :class:`~repro.fitting.cache.FitCache`, so experiment grids that
  revisit the same ``(family, curve, config)`` triple skip the solve
  entirely.

A third layer is opt-in: ``engine="batched"`` routes the multi-start
exploration through :mod:`repro.fitting.batched`, a pure-numpy batched
Levenberg–Marquardt kernel that advances every start in lockstep and
amortizes the per-call dispatch overhead across the whole batch. The
batched kernel *screens* the starts; the winning start is then
re-solved by scipy from its original x0 (one solve instead of one per
start), so the final optimum is the exact scipy trajectory and the
rendered tables are byte-identical under both engines (the scipy path
stays the oracle).
"""

from __future__ import annotations

import logging
import time
from typing import Any, Iterable, Mapping, NamedTuple, Sequence

import numpy as np
from scipy import optimize

from repro.core.curve import ResilienceCurve
from repro.exceptions import ConvergenceError, FitError
from repro.fitting.batched import BatchedProblem, resolve_engine, solve_batched
from repro.fitting.cache import (
    FitCache,
    fit_cache_key,
    resolve_cache,
    sequence_of_vectors,
)
from repro.fitting.multistart import generate_starts
from repro.fitting.options import (
    DEFAULT_ENGINE_OPTIONS as DEFAULT_OPTIONS,
    EngineOptions,
    grid_engine_kwargs,
    warn_deprecated_engine_kwargs,
)
from repro.fitting.result import FitResult
from repro.models.base import ResilienceModel
from repro.observability.tracer import (
    NULL_TRACER,
    Tracer,
    TracerLike,
    activate,
    deactivate,
    resolve_tracer,
)
from repro.parallel import ExecutorLike, get_executor

__all__ = ["fit_least_squares", "fit_many", "FitManyResult"]

logger = logging.getLogger("repro.fitting")

#: Magnitude of the penalty applied to non-finite residuals. The
#: penalty is ``scale·(1 + ‖θ‖)`` rather than a constant: a constant
#: plateau has zero gradient everywhere, so once a trust-region step
#: lands in a non-finite pocket the optimizer sees a flat landscape and
#: stalls there. The ‖θ‖ term restores a slope pointing back toward the
#: origin (feasible vectors in every family are bounded well below the
#: scales that overflow), letting the solver walk out of the pocket.
_PENALTY_SCALE = 1e6

#: Recognized ``jac=`` modes for :func:`fit_least_squares`.
_JAC_MODES = ("auto", "analytic", "2-point")

#: Relative SSE band for multi-start winner selection. Several starts
#: routinely converge into the *same* basin, where their objectives
#: agree to last-ulp noise (~1e-14 relative in practice); a strict
#: argmin would let that noise pick the winner — and let two solver
#: engines or Jacobian modes disagree about it. Instead the winner is
#: the earliest start whose SSE lies within this band of the best,
#: which is stable under any perturbation smaller than the band.
#: Distinct local optima in these families are separated by many orders
#: of magnitude more than this, so the rule never crosses basins.
_REDUCE_RTOL = 1e-8


def _penalty_value(vector: np.ndarray) -> float:
    """Smoothly increasing replacement for non-finite residuals."""
    return _PENALTY_SCALE * (1.0 + float(np.linalg.norm(vector)))


def _penalty_gradient(vector: np.ndarray) -> np.ndarray:
    """Gradient of :func:`_penalty_value` with respect to θ."""
    norm = float(np.linalg.norm(vector))
    if norm < 1e-12:
        return np.zeros_like(vector)
    return (_PENALTY_SCALE / norm) * np.asarray(vector, dtype=np.float64)


class _StartOutcome(NamedTuple):
    """Per-start optimizer outcome; ``vector`` is None when the start
    raised or produced a non-finite objective. ``seconds`` is the
    start's wall time, measured inside the work unit so it survives the
    trip through any executor backend and can be traced by the parent."""

    sse: float
    vector: tuple[float, ...] | None
    message: str
    converged: bool
    nfev: int
    njev: int
    seconds: float


class _StartWork(NamedTuple):
    """Picklable work unit: one optimizer run from one start."""

    family: ResilienceModel
    curve: ResilienceCurve
    x0: tuple[float, ...]
    lower: tuple[float, ...]
    upper: tuple[float, ...]
    max_nfev: int
    sqrt_weights: tuple[float, ...] | None
    jac_mode: str


def _solve_start(work: _StartWork) -> _StartOutcome:
    """Run one bounded least-squares solve (module-level so the process
    backend can pickle it).

    The residual-evaluation counter lives here rather than trusting
    ``solution.nfev``: scipy's trf does *not* count the residual calls
    its 2-point Jacobian makes, so the reported number would flatter the
    finite-difference mode. Counting inside the closures makes the
    analytic-vs-FD comparison honest.
    """
    t0 = time.perf_counter()
    family = work.family
    curve = work.curve
    lower = np.asarray(work.lower, dtype=np.float64)
    upper = np.asarray(work.upper, dtype=np.float64)
    sqrt_weights = (
        None
        if work.sqrt_weights is None
        else np.asarray(work.sqrt_weights, dtype=np.float64)
    )
    counters = {"nfev": 0, "njev": 0}

    def objective(vector: np.ndarray) -> np.ndarray:
        counters["nfev"] += 1
        residuals = family.residuals(curve, vector)
        bad = ~np.isfinite(residuals)
        if bad.any():
            residuals = np.where(bad, _penalty_value(vector), residuals)
        if sqrt_weights is not None:
            residuals = residuals * sqrt_weights
        return residuals

    def analytic_jac(vector: np.ndarray) -> np.ndarray:
        counters["njev"] += 1
        jac = -family.prediction_jacobian(curve.times, vector)
        predictions = family.evaluate(curve.times, vector)
        bad = ~np.isfinite(predictions)
        if bad.any():
            # Match the objective: penalized rows get the penalty's
            # gradient so the solver still sees a downhill direction.
            jac[bad, :] = _penalty_gradient(vector)
        jac = np.where(np.isfinite(jac), jac, 0.0)
        if sqrt_weights is not None:
            jac = jac * sqrt_weights[:, np.newaxis]
        return jac

    jac_arg: Any = analytic_jac if work.jac_mode == "analytic" else "2-point"
    x0 = np.clip(np.asarray(work.x0, dtype=np.float64), lower, upper)
    try:
        solution = optimize.least_squares(
            objective,
            x0,
            jac=jac_arg,
            bounds=(lower, upper),
            method="trf",
            max_nfev=work.max_nfev,
            # Far below the 8-decimal precision tables are rendered at,
            # so the analytic and finite-difference Jacobian modes stop
            # at the same optimum and render identical artifacts.
            ftol=1e-12,
            xtol=1e-12,
            gtol=1e-12,
        )
    except (ValueError, FloatingPointError):
        return _StartOutcome(
            float("nan"), None, "", False, counters["nfev"], counters["njev"],
            time.perf_counter() - t0,
        )
    sse = float(2.0 * solution.cost)  # cost is 0.5 * sum(residual²)
    if not np.isfinite(sse):
        return _StartOutcome(
            sse, None, "", False, counters["nfev"], counters["njev"],
            time.perf_counter() - t0,
        )
    return _StartOutcome(
        sse,
        tuple(float(v) for v in solution.x),
        str(solution.message),
        bool(solution.success),
        counters["nfev"],
        counters["njev"],
        time.perf_counter() - t0,
    )


class _WinnerSelection(NamedTuple):
    """Outcome of the reduce → confirm → polish pipeline.

    Shared by the single-fit path below and the fleet engine in
    :mod:`repro.fitting.fleet`, so both reduce multi-start outcomes with
    *exactly* the same rules (band-based winner selection, scipy
    confirmation of batched winners, analytic polish) — the property
    that makes fleet results bit-identical to per-episode fits.
    """

    sse: float
    vector: tuple[float, ...]
    message: str
    converged: bool
    winner_index: int
    failures: int
    confirm_nfev: int
    confirm_njev: int
    polish_nfev: int
    polish_njev: int


def _select_and_confirm(
    family: ResilienceModel,
    curve: ResilienceCurve,
    start_vectors: Sequence[tuple[float, ...]],
    outcomes: Sequence[Any],
    *,
    lower: tuple[float, ...],
    upper: tuple[float, ...],
    max_nfev: int,
    sqrt_weights: tuple[float, ...] | None,
    jac_mode: str,
    engine_mode: str,
    tracer: Any,
) -> _WinnerSelection:
    """Reduce multi-start *outcomes* to the final optimum.

    Reduction happens in start order — identical on every backend
    regardless of which produced the outcomes. The winner is the
    earliest start whose SSE lies within the ``_REDUCE_RTOL`` band of
    the best (see the constant's rationale), not the strict argmin.
    Under ``engine_mode == "batched"`` the winning start is then
    re-solved by scipy from its original x0 (the screen-then-confirm
    contract), and 2-point winners of analytic families are polished.

    *curve* and *sqrt_weights* describe the problem the confirmation
    solves run on; the fleet engine screens padded copies of an episode
    but confirms on the original, which is valid because zero-weight
    padding rows contribute exactly nothing to the screened objective.

    Raises
    ------
    ConvergenceError
        If every start failed to produce a finite optimum.
    """
    failures = 0
    min_sse = np.inf
    for outcome in outcomes:
        if outcome.vector is None:
            failures += 1
        elif outcome.sse < min_sse:
            min_sse = outcome.sse

    if not np.isfinite(min_sse):
        raise ConvergenceError(
            f"all {len(start_vectors)} starts failed fitting "
            f"{family.name!r} to {curve.name or '<curve>'}"
        )
    threshold = min_sse + _REDUCE_RTOL * abs(min_sse)
    winner_index = next(
        index
        for index, outcome in enumerate(outcomes)
        if outcome.vector is not None and outcome.sse <= threshold
    )
    winner = outcomes[winner_index]
    assert winner.vector is not None  # the generator above filters failures
    best_sse = float(winner.sse)
    best_vector: tuple[float, ...] = winner.vector
    best_message = winner.message
    best_converged = winner.converged

    # The batched kernel only *screens* the starts: it finds the basin
    # and ranks the candidates, but its iterates are not scipy's. Each
    # in-band candidate is re-solved by scipy from its original x0, in
    # start order, until one lands back inside the band — that solve is
    # the exact trajectory the scipy engine would have produced for the
    # same start, so rendered artifacts are byte-identical. (The loop,
    # rather than a single confirmation, covers the rare start whose
    # batched iterates and scipy iterates descend into different
    # basins; in the common case exactly one solve runs.)
    confirm_nfev = 0
    confirm_njev = 0
    if engine_mode == "batched":
        chosen: _StartOutcome | None = None
        fallback: _StartOutcome | None = None
        for index, outcome in enumerate(outcomes):
            if outcome.vector is None or outcome.sse > threshold:
                continue
            confirm = _solve_start(
                _StartWork(
                    family, curve, start_vectors[index], lower, upper,
                    max_nfev, sqrt_weights, jac_mode,
                )
            )
            confirm_nfev += confirm.nfev
            confirm_njev += confirm.njev
            if tracer.enabled:
                tracer.record(
                    "fit.confirm",
                    confirm.seconds,
                    index=index,
                    nfev=confirm.nfev,
                    njev=confirm.njev,
                    converged=confirm.converged,
                )
            if confirm.vector is None:
                continue
            if fallback is None or confirm.sse < fallback.sse:
                fallback = confirm
            if confirm.sse <= threshold:
                chosen = confirm
                winner_index = index
                break
        if chosen is None:
            # scipy never reached the screened basin from any in-band
            # x0; restart it from the screened optimum itself so the
            # result is still a scipy-converged point, and keep the
            # best confirmation if that somehow does better.
            rescue = _solve_start(
                _StartWork(
                    family, curve, best_vector, lower, upper, max_nfev,
                    sqrt_weights, jac_mode,
                )
            )
            confirm_nfev += rescue.nfev
            confirm_njev += rescue.njev
            contenders = [
                o for o in (fallback, rescue) if o is not None and o.vector is not None
            ]
            if contenders:
                chosen = min(contenders, key=lambda o: o.sse)
        if chosen is not None:
            best_sse = chosen.sse
            best_vector = chosen.vector
            best_message = chosen.message
            best_converged = chosen.converged

    # Forward differences cannot localize the optimum below their own
    # noise floor (~√eps relative in the parameters), so a pure 2-point
    # run would disagree with the analytic engine in the last rendered
    # digit. Polishing the winner with the closed form — when the family
    # has one — makes the final optimum independent of the exploration
    # mode; the polish cost is counted in nfev/njev like everything else.
    # The rule is engine-independent: the batched winner was already
    # re-solved by scipy above, so it polishes under exactly the same
    # condition the scipy path does.
    polish_nfev = 0
    polish_njev = 0
    needs_polish = jac_mode == "2-point" and family.has_analytic_jacobian
    if needs_polish:
        polish = _solve_start(
            _StartWork(
                family, curve, best_vector, lower, upper, max_nfev,
                sqrt_weights, "analytic",
            )
        )
        polish_nfev, polish_njev = polish.nfev, polish.njev
        if tracer.enabled:
            tracer.record(
                "fit.polish",
                polish.seconds,
                nfev=polish.nfev,
                njev=polish.njev,
                converged=polish.converged,
            )
        if polish.vector is not None and polish.sse <= best_sse:
            best_sse = polish.sse
            best_vector = polish.vector
            best_message = polish.message
            best_converged = polish.converged

    return _WinnerSelection(
        sse=best_sse,
        vector=best_vector,
        message=best_message,
        converged=best_converged,
        winner_index=int(winner_index),
        failures=failures,
        confirm_nfev=confirm_nfev,
        confirm_njev=confirm_njev,
        polish_nfev=polish_nfev,
        polish_njev=polish_njev,
    )


def _resolve_jac_mode(family: ResilienceModel, jac: str) -> str:
    """Map the user-facing ``jac=`` choice onto a concrete mode."""
    if jac not in _JAC_MODES:
        raise FitError(f"jac must be one of {_JAC_MODES}, got {jac!r}")
    if jac == "auto":
        return "analytic" if family.has_analytic_jacobian else "2-point"
    if jac == "analytic" and not family.has_analytic_jacobian:
        raise FitError(
            f"family {family.name!r} has no analytic Jacobian; "
            f"use jac='auto' or jac='2-point'"
        )
    return jac


def fit_least_squares(
    family: ResilienceModel,
    curve: ResilienceCurve,
    *,
    options: EngineOptions | None = None,
    n_random_starts: int | None = None,
    seed: int | None = None,
    max_nfev: int | None = None,
    starts: Sequence[Sequence[float]] | None = None,
    extra_starts: Sequence[Sequence[float]] | None = None,
    weights: Sequence[float] | None = None,
    jac: str | None = None,
    engine: str | None = None,
    cache: bool | FitCache | None = None,
    trace: TracerLike = None,
    executor: ExecutorLike = None,
    n_workers: int | None = None,
) -> FitResult:
    """Fit *family* to *curve* by bounded least squares.

    Parameters
    ----------
    family:
        Unbound model family (e.g. ``QuadraticResilienceModel()``).
    curve:
        Empirical curve; typically the training prefix from
        :meth:`~repro.core.curve.ResilienceCurve.train_test_split`.
    options:
        An :class:`~repro.fitting.options.EngineOptions` bundle holding
        the engine knobs in one value. Any individual kwarg below that
        is passed explicitly overrides the corresponding options field;
        fields left at their defaults behave exactly like omitting the
        kwarg.
    n_random_starts:
        Perturbed variants per heuristic seed (see
        :func:`~repro.fitting.multistart.generate_starts`). 0 uses only
        the heuristic seeds.
    seed:
        Random-stream seed for start generation; ``None`` uses the
        library default (fits are deterministic either way).
    max_nfev:
        Function-evaluation budget per start.
    starts:
        Explicit starting vectors; overrides generation entirely.
    extra_starts:
        Additional heuristic start vectors *prepended* to the start
        list (clipped to bounds, deduplicated). Used by warm-started
        sweeps to inject the neighbouring cell's optimum without
        discarding the family's own seeds.
    weights:
        Optional per-observation weights ``wᵢ`` turning Eq. (8) into
        weighted least squares ``Σ wᵢ(R(tᵢ) − P(tᵢ))²`` — e.g. inverse
        variances for heteroscedastic telemetry, or zeros to mask
        outliers. Must be non-negative, same length as the curve. The
        reported :attr:`FitResult.sse` remains the *unweighted* Eq. (9)
        value so it stays comparable across weightings.
    jac:
        Jacobian strategy: ``"auto"`` (closed form when the family has
        one, else finite differences — the default), ``"analytic"``
        (require the closed form; raises if unavailable), or
        ``"2-point"`` (force scipy's forward differences during
        exploration; the winning start is still polished with the
        closed form when one exists, so the fitted optimum does not
        depend on the mode).
    engine:
        Solver engine: ``"scipy"`` (one ``optimize.least_squares`` call
        per start — the golden-table oracle) or ``"batched"`` (the
        :mod:`repro.fitting.batched` vectorized Levenberg–Marquardt
        kernel, which screens all starts in one stacked solve and then
        re-solves the winning start with scipy from its original x0,
        so rendered artifacts are byte-identical under both engines).
        ``None`` defers to
        ``options.engine`` and then the ``REPRO_FIT_ENGINE``
        environment variable (default ``"scipy"``).
    cache:
        Fit memoization: ``None``/``True`` use the environment-default
        :class:`~repro.fitting.cache.FitCache` (``REPRO_FIT_CACHE``),
        ``False`` bypasses caching, and an explicit
        :class:`~repro.fitting.cache.FitCache` uses that instance.
        Hits return a result bit-identical to the original solve with
        ``details["cache_hit"] = True``.
    trace:
        Observability: ``None`` uses the environment default
        (``REPRO_TRACE`` / ``REPRO_TRACE_FILE`` — disabled when unset),
        ``False`` disables tracing, ``True`` uses the process-global
        tracer, and an explicit
        :class:`~repro.observability.Tracer` records into that
        instance. When enabled, the fit emits one ``"fit"`` span (with
        nfev/njev/jac-mode/cache-hit attribution) plus one
        ``"fit.start"`` span per multi-start solve.
    executor:
        Backend the independent multi-start solves run on: ``"serial"``
        (default), ``"thread"``, ``"process"``, or a
        :class:`~repro.parallel.FitExecutor` instance. Results are
        reduced in start order, so every backend returns the same fit.
    n_workers:
        Worker count for the pooled backends.

    .. deprecated::
        Passing ``cache=``, ``trace=``, ``executor=``, or
        ``n_workers=`` as loose keyword arguments draws a
        ``DeprecationWarning``; put the plumbing in ``options=``
        (``EngineOptions(cache=..., trace=..., executor=...,
        n_workers=...)``) instead. The values are still honored
        exactly as before. The per-fit science knobs (``jac``,
        ``engine``, ``seed``, ``n_random_starts``, ``max_nfev``)
        remain first-class kwargs.

    Returns
    -------
    FitResult
        With the model bound to the lowest-SSE optimum across starts
        (lowest weighted SSE when *weights* are given). ``details``
        records the per-start and total residual/Jacobian evaluation
        counts (``nfev``/``njev``), the resolved ``jac_mode``, and
        whether the result came from cache.

    Raises
    ------
    FitError
        If the curve contains non-finite values or fewer observations
        than parameters, or the ``jac``/``cache`` arguments are invalid.
    ConvergenceError
        If every start fails to produce a finite optimum.
    """
    warn_deprecated_engine_kwargs(
        "fit_least_squares",
        [
            name
            for name, value in (
                ("cache", cache),
                ("trace", trace),
                ("executor", executor),
                ("n_workers", n_workers),
            )
            if value is not None
        ],
    )
    opts = (options or DEFAULT_OPTIONS).override(
        n_random_starts=n_random_starts,
        seed=seed,
        max_nfev=max_nfev,
        jac=jac,
        engine=engine,
        cache=cache,
        trace=trace,
        executor=executor,
        n_workers=n_workers,
    )
    n_random_starts = opts.n_random_starts
    seed = opts.seed
    max_nfev = opts.max_nfev
    jac = opts.jac
    engine = opts.engine
    # ``False`` is a meaningful override for cache/trace, so take the
    # merged fields verbatim rather than re-filtering through ``None``.
    cache = opts.cache
    trace = opts.trace
    executor = opts.executor
    n_workers = opts.n_workers
    tracer = resolve_tracer(trace)
    if not tracer.enabled:
        if trace is False:
            # Explicit opt-out also masks any ambient tracer so nothing
            # below this fit (e.g. the executor) emits spans for it.
            with deactivate():
                return _fit_least_squares(
                    family, curve, n_random_starts=n_random_starts, seed=seed,
                    max_nfev=max_nfev, starts=starts, extra_starts=extra_starts,
                    weights=weights, jac=jac, engine=engine, cache=cache,
                    executor=executor, n_workers=n_workers, tracer=NULL_TRACER,
                )
        # No-op fast path: skip span construction entirely so the
        # disabled overhead stays within noise on the table workloads.
        return _fit_least_squares(
            family, curve, n_random_starts=n_random_starts, seed=seed,
            max_nfev=max_nfev, starts=starts, extra_starts=extra_starts,
            weights=weights, jac=jac, engine=engine, cache=cache,
            executor=executor, n_workers=n_workers, tracer=NULL_TRACER,
        )
    start_time = time.perf_counter()
    with tracer.span(
        "fit",
        family=family.name,
        curve=curve.name or "<curve>",
        n_points=len(curve),
    ) as span:
        result = _fit_least_squares(
            family, curve, n_random_starts=n_random_starts, seed=seed,
            max_nfev=max_nfev, starts=starts, extra_starts=extra_starts,
            weights=weights, jac=jac, engine=engine, cache=cache,
            executor=executor, n_workers=n_workers, tracer=tracer,
        )
        details = result.details
        span.set(
            sse=result.sse,
            converged=result.converged,
            n_starts=result.n_starts,
            n_failures=result.n_failures,
            nfev=details.get("nfev"),
            njev=details.get("njev"),
            jac_mode=details.get("jac_mode"),
            engine=result.engine,
            cache_hit=bool(details.get("cache_hit", False)),
        )
        tracer.metrics.inc("fit.count")
        tracer.metrics.inc("fit.nfev", int(details.get("nfev", 0)))
        tracer.metrics.inc("fit.njev", int(details.get("njev", 0)))
        tracer.metrics.observe("fit.seconds", time.perf_counter() - start_time)
        return result


def _fit_least_squares(
    family: ResilienceModel,
    curve: ResilienceCurve,
    *,
    n_random_starts: int,
    seed: int | None,
    max_nfev: int,
    starts: Sequence[Sequence[float]] | None,
    extra_starts: Sequence[Sequence[float]] | None,
    weights: Sequence[float] | None,
    jac: str,
    engine: str | None,
    cache: bool | FitCache | None,
    executor: ExecutorLike,
    n_workers: int | None,
    tracer: Any,
) -> FitResult:
    """The untraced fit body; *tracer* is already resolved (possibly
    the null tracer) and only consulted behind ``enabled`` guards."""
    if len(curve) <= family.n_params:
        raise FitError(
            f"cannot fit {family.n_params}-parameter model {family.name!r} "
            f"to {len(curve)} observations"
        )
    if not np.all(np.isfinite(curve.performance)):
        raise FitError("curve contains non-finite performance values")

    jac_mode = _resolve_jac_mode(family, jac)
    engine_mode = resolve_engine(engine)

    lower = tuple(float(v) for v in family.lower_bounds)
    upper = tuple(float(v) for v in family.upper_bounds)

    sqrt_weights: tuple[float, ...] | None = None
    weight_list: list[float] | None = None
    if weights is not None:
        weight_array = np.asarray(weights, dtype=np.float64)
        if weight_array.shape != (len(curve),):
            raise FitError(
                f"weights must have one entry per observation "
                f"({len(curve)}), got shape {weight_array.shape}"
            )
        if not np.all(np.isfinite(weight_array)) or np.any(weight_array < 0.0):
            raise FitError("weights must be finite and non-negative")
        if not np.any(weight_array > 0.0):
            raise FitError("at least one weight must be positive")
        sqrt_weights = tuple(float(v) for v in np.sqrt(weight_array))
        weight_list = [float(v) for v in weight_array]

    # ------------------------------------------------------------------
    # Cache lookup. The key covers every input that determines the
    # optimum; start generation is deterministic, so keying on its
    # inputs (counts + seed) is equivalent to keying on the vectors.
    # ------------------------------------------------------------------
    fit_cache = resolve_cache(cache)
    cache_key: str | None = None
    if fit_cache is not None:
        cache_key = fit_cache_key(
            family,
            curve,
            {
                # Engine-versioned so the two solvers never cross-serve
                # cache entries (their per-start diagnostics differ even
                # though the polished optimum does not).
                "engine": (
                    "batched_lm.v1" if engine_mode == "batched" else "least_squares.v2"
                ),
                "n_random_starts": int(n_random_starts),
                "seed": None if seed is None else int(seed),
                "max_nfev": int(max_nfev),
                "starts": sequence_of_vectors(starts),
                "extra_starts": sequence_of_vectors(extra_starts),
                "weights": weight_list,
                "jac": jac_mode,
            },
        )
        record = fit_cache.get(cache_key)
        if tracer.enabled:
            tracer.metrics.inc(
                "cache.hits" if record is not None else "cache.misses"
            )
        if record is not None:
            details = dict(record.get("details", {}))
            details["cache_hit"] = True
            return FitResult(
                model=family.bind(tuple(float(v) for v in record["params"])),
                curve=curve,
                sse=float(record["sse"]),
                converged=bool(record["converged"]),
                n_starts=int(record["n_starts"]),
                n_failures=int(record["n_failures"]),
                message=str(record["message"]),
                details=details,
                engine=str(record.get("engine", engine_mode)),
            )

    if starts is None:
        kwargs = {} if seed is None else {"seed": seed}
        start_vectors: list[tuple[float, ...]] = generate_starts(
            family, curve, n_random=n_random_starts, **kwargs
        )
    else:
        start_vectors = [tuple(float(v) for v in s) for s in starts]
        if not start_vectors:
            raise FitError("explicit starts list is empty")

    if extra_starts:
        injected: list[tuple[float, ...]] = []
        for vector in extra_starts:
            clipped = tuple(
                float(np.clip(float(v), lo, hi))
                for v, lo, hi in zip(vector, lower, upper)
            )
            if len(clipped) != family.n_params:
                raise FitError(
                    f"extra start has {len(clipped)} entries; family "
                    f"{family.name!r} expects {family.n_params}"
                )
            if clipped not in injected:
                injected.append(clipped)
        start_vectors = injected + [
            s for s in start_vectors if s not in injected
        ]

    outcomes: Sequence[Any]
    if engine_mode == "batched":
        # All starts advance in lockstep through one stacked LM solve;
        # counters stay per-problem (each batched residual evaluation
        # charges one nfev to every start it served), so the reduce and
        # the traces below see the same shape as the scipy path.
        curve_times = tuple(float(v) for v in curve.times)
        curve_targets = tuple(float(v) for v in curve.performance)
        problems = [
            BatchedProblem(
                family, curve_times, curve_targets, start, lower, upper,
                max_nfev, sqrt_weights, jac_mode,
            )
            for start in start_vectors
        ]
        outcomes = solve_batched(problems)
    else:
        work_units = [
            _StartWork(
                family, curve, start, lower, upper, max_nfev, sqrt_weights, jac_mode
            )
            for start in start_vectors
        ]
        with activate(tracer):
            outcomes = get_executor(executor, max_workers=n_workers).map(
                _solve_start, work_units
            )

    if tracer.enabled:
        for index, outcome in enumerate(outcomes):
            tracer.record(
                "fit.start",
                outcome.seconds,
                index=index,
                sse=outcome.sse,
                nfev=outcome.nfev,
                njev=outcome.njev,
                converged=outcome.converged,
                failed=outcome.vector is None,
            )
            tracer.metrics.observe("fit.start_seconds", outcome.seconds)

    per_start_sse: list[float] = [outcome.sse for outcome in outcomes]
    per_start_nfev: list[int] = [outcome.nfev for outcome in outcomes]
    per_start_njev: list[int] = [outcome.njev for outcome in outcomes]
    per_start_seconds: list[float] = [outcome.seconds for outcome in outcomes]

    selection = _select_and_confirm(
        family, curve, start_vectors, outcomes,
        lower=lower, upper=upper, max_nfev=max_nfev,
        sqrt_weights=sqrt_weights, jac_mode=jac_mode,
        engine_mode=engine_mode, tracer=tracer,
    )
    failures = selection.failures
    winner_index = selection.winner_index
    best_sse = selection.sse
    best_vector = selection.vector
    best_message = selection.message
    best_converged = selection.converged
    confirm_nfev = selection.confirm_nfev
    confirm_njev = selection.confirm_njev
    polish_nfev = selection.polish_nfev
    polish_njev = selection.polish_njev

    if sqrt_weights is not None:
        # Selection used the weighted objective; report the unweighted
        # Eq. (9) SSE so results stay comparable across weightings.
        best_sse = family.sse(curve, best_vector)

    details: dict[str, Any] = {
        "per_start_sse": per_start_sse,
        "per_start_nfev": per_start_nfev,
        "per_start_njev": per_start_njev,
        "per_start_seconds": per_start_seconds,
        "nfev": int(sum(per_start_nfev)) + confirm_nfev + polish_nfev,
        "njev": int(sum(per_start_njev)) + confirm_njev + polish_njev,
        "confirm_nfev": confirm_nfev,
        "confirm_njev": confirm_njev,
        "polish_nfev": polish_nfev,
        "polish_njev": polish_njev,
        "winner_start": int(winner_index),
        "jac_mode": jac_mode,
    }
    if engine_mode == "batched":
        details["per_start_iterations"] = [
            int(outcome.n_iterations) for outcome in outcomes
        ]

    if fit_cache is not None and cache_key is not None:
        fit_cache.put(
            cache_key,
            {
                "params": [float(v) for v in best_vector],
                "sse": float(best_sse),
                "converged": bool(best_converged),
                "n_starts": len(start_vectors),
                "n_failures": failures,
                "message": best_message,
                "details": dict(details),
                "engine": engine_mode,
            },
        )

    details["cache_hit"] = False
    return FitResult(
        model=family.bind(best_vector),
        curve=curve,
        sse=best_sse,
        converged=best_converged,
        n_starts=len(start_vectors),
        n_failures=failures,
        message=best_message,
        details=details,
        engine=engine_mode,
    )


class FitManyResult(dict):
    """Mapping of family name → :class:`FitResult`, plus failure records.

    Behaves exactly like the plain dict :func:`fit_many` historically
    returned, with a :attr:`failures` mapping of family name → error
    message for families whose fit raised
    :class:`~repro.exceptions.ConvergenceError` — so callers can
    distinguish "not requested" from "failed to converge".
    """

    def __init__(
        self,
        results: Mapping[str, FitResult] | None = None,
        failures: Mapping[str, str] | None = None,
    ) -> None:
        super().__init__(results or {})
        #: Family name → stringified ConvergenceError for failed fits.
        self.failures: dict[str, str] = dict(failures or {})

    @property
    def converged_names(self) -> tuple[str, ...]:
        """Names that produced a fit, in request order."""
        return tuple(self)

    @property
    def failed_names(self) -> tuple[str, ...]:
        """Names whose fit failed to converge, in request order."""
        return tuple(self.failures)

    def best(self) -> FitResult:
        """The lowest-SSE successful fit across all families.

        Ties break toward the earlier family in request order (``min``
        is stable). Raises :class:`~repro.exceptions.ConvergenceError`
        when no family converged, listing the per-family errors.
        """
        if not self:
            raise ConvergenceError(
                "no family converged"
                + (
                    f" (failures: {dict(self.failures)!r})"
                    if self.failures
                    else ""
                )
            )
        return min(self.values(), key=lambda fit: fit.sse)

    def copy(self) -> "FitManyResult":
        """A shallow copy that keeps :attr:`failures` (``dict.copy``
        would silently drop it and downgrade to a plain dict)."""
        return FitManyResult(self, self.failures)

    def __reduce__(
        self,
    ) -> "tuple[type[FitManyResult], tuple[dict[str, FitResult], dict[str, str]]]":
        # dict subclass pickling reconstructs through the class with no
        # args, losing instance state on some protocols; rebuild through
        # __init__ so .failures round-trips everywhere.
        return (FitManyResult, (dict(self), self.failures))


class _FamilyWork(NamedTuple):
    """Picklable work unit: one family fit against the shared curve."""

    family: ResilienceModel
    curve: ResilienceCurve
    fit_kwargs: dict


def _fit_family(work: _FamilyWork) -> tuple[str, FitResult | None, str]:
    """Fit one family, encoding convergence failure in the result."""
    try:
        return work.family.name, fit_least_squares(
            work.family, work.curve, **work.fit_kwargs
        ), ""
    except ConvergenceError as exc:
        return work.family.name, None, str(exc)


def fit_many(
    families: Iterable[ResilienceModel],
    curve: ResilienceCurve,
    *,
    options: EngineOptions | None = None,
    executor: ExecutorLike = None,
    n_workers: int | None = None,
    **kwargs: object,
) -> FitManyResult:
    """Fit several families to the same curve.

    Returns a :class:`FitManyResult` mapping family name to its
    :class:`FitResult`; families that fail to converge are recorded in
    :attr:`FitManyResult.failures` (and logged) instead of being
    silently dropped.

    Parameters
    ----------
    options:
        :class:`~repro.fitting.options.EngineOptions` bundle. Its
        executor fields drive the family loop below (unless overridden
        by the explicit ``executor=``/``n_workers=``); the remaining
        non-default fields are forwarded into each per-family fit,
        under any explicit ``kwargs``.
    executor, n_workers:
        Backend for the per-family fits (each family is an independent
        problem). The per-family fits themselves run serially when the
        family loop is parallelized.
    kwargs:
        Passed through to :func:`fit_least_squares`. Enabling tracing
        (``options.trace``, or the deprecated loose ``trace=`` kwarg)
        both traces each per-family fit and wraps the whole call in
        one ``"fit.many"`` span.
    """
    executor, n_workers, kwargs = grid_engine_kwargs(
        options, executor, n_workers, kwargs, entry="fit_many"
    )
    tracer = resolve_tracer(kwargs["options"].trace)
    work_units = [_FamilyWork(family, curve, dict(kwargs)) for family in families]
    with tracer.span(
        "fit.many", n_families=len(work_units), curve=curve.name or "<curve>"
    ), activate(tracer):
        triples = get_executor(executor, max_workers=n_workers).map(
            _fit_family, work_units
        )
    result = FitManyResult()
    for name, fit, error in triples:
        if fit is None:
            logger.warning("fit_many: family %r failed to converge: %s", name, error)
            result.failures[name] = error
        else:
            result[name] = fit
    return result
