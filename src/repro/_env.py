"""The process-environment boundary for the whole package.

Every environment variable the library responds to is registered here,
and every read goes through :func:`read_env`. This is the **only**
module in ``src/repro`` allowed to touch ``os.environ`` — the
``repro.devtools.lint`` rule R1 (``env-boundary``) enforces it, with
this file as the sole allowlist entry. Confining reads to one funnel
keeps the env-resolution story auditable: :meth:`EngineOptions.resolve`
and the handful of default-component factories (the default tracer,
cache, and executor) call in here, and nothing else consults the
environment at all.

Reads are intentionally *not* cached: the default-component factories
(`default_tracer`, `default_fit_cache`) compare successive raw values
to decide when to rebuild their instances, and the test suite
monkeypatches ``os.environ`` freely between calls.
"""

from __future__ import annotations

import os

__all__ = ["REGISTERED_ENV_VARS", "read_env", "spawn_env"]

#: Every environment variable the library reads, with the reason it
#: exists. Reading an unregistered name is a programming error — add
#: the variable here (and document it) before using it.
REGISTERED_ENV_VARS: dict[str, str] = {
    "REPRO_FIT_EXECUTOR": "default parallel backend name (serial/thread/process)",
    "REPRO_FIT_WORKERS": "default worker count for the pooled backends",
    "REPRO_FIT_ENGINE": "default fit solver engine (scipy/batched)",
    "REPRO_FIT_CACHE": "default fit-cache mode: off words, a path, or empty",
    "REPRO_FIT_CACHE_MAXSIZE": "default fit-cache LRU capacity (positive int)",
    "REPRO_TRACE": "enable the process-default tracer",
    "REPRO_TRACE_FILE": "JSON-lines span file (implies tracing)",
    "REPRO_SERVE_HOST": "forecast server bind host (repro serve)",
    "REPRO_SERVE_PORT": "forecast server bind port (0 = ephemeral)",
    "REPRO_SERVE_MAX_STREAMS": "admission cap on concurrently registered streams",
    "REPRO_SERVE_MAX_INFLIGHT_REFITS": (
        "first-fit solves allowed in flight before 429 rejections"
    ),
    "REPRO_SERVE_REFIT_INTERVAL": "seconds between batched refit ticks (0 = off)",
    "REPRO_SERVE_REFIT_TIMEOUT": "deadline (s) for request-triggered first fits",
    "REPRO_ANALYSIS_CACHE": (
        "repro lint AST-cache location: off words disable it, a path "
        "overrides the default .repro-lint-cache at the project root"
    ),
    "REPRO_PERF_STRICT": (
        "enable the pure wall-clock assertions in the tier-1 perf "
        "guards and strict wall gating in `repro bench compare` "
        "(counters are always asserted; wall bounds flake on loaded "
        "CI boxes, so they are opt-in)"
    ),
}


def read_env(name: str, default: str | None = None) -> str | None:
    """The registered environment variable *name*, or *default*.

    Raises
    ------
    KeyError
        If *name* was never registered in :data:`REGISTERED_ENV_VARS` —
        new knobs must be declared before they can be read.
    """
    if name not in REGISTERED_ENV_VARS:
        raise KeyError(
            f"environment variable {name!r} is not registered in "
            "repro._env.REGISTERED_ENV_VARS; declare it there first"
        )
    return os.environ.get(name, default)


def spawn_env(**overrides: str | None) -> dict[str, str]:
    """The process environment for a child process, with *overrides*.

    The benchmark runner launches workload scripts in subprocesses and
    must hand them the full parent environment (PATH, PYTHONPATH, …)
    plus engine-axis overrides. This is the one sanctioned way to do
    that without reading ``os.environ`` outside this module: every
    override key must be a registered variable, and a ``None`` value
    removes the variable from the child environment.
    """
    env = dict(os.environ)
    for name, value in overrides.items():
        if name not in REGISTERED_ENV_VARS:
            raise KeyError(
                f"environment variable {name!r} is not registered in "
                "repro._env.REGISTERED_ENV_VARS; declare it there first"
            )
        if value is None:
            env.pop(name, None)
        else:
            env[name] = value
    return env
