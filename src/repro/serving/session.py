"""Multiplexing many online forecasts over one shared engine.

:class:`ForecastSession` manages a fleet of
:class:`~repro.serving.online.OnlineForecaster` streams — the "many
concurrently disrupted systems" workload — behind one resolved
cache/tracer/executor. Observations are routed by stream key
(auto-registering unknown keys), and :meth:`ForecastSession.refit_stale`
runs every due refit as one batch on the shared executor instead of
N sequential solves.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, NamedTuple, Sequence

from repro.core.curve import ResilienceCurve
from repro.datasets.stream import StreamEvent
from repro.exceptions import ServingError
from repro.serving.errors import StreamNotFound
from repro.fitting.least_squares import fit_least_squares
from repro.fitting.options import EngineOptions
from repro.fitting.result import FitResult
from repro.models.base import ResilienceModel
from repro.serving.online import Forecast, ForecastReport, OnlineForecaster, RefitPolicy

__all__ = ["ForecastSession", "PlannedRefit"]


class _BatchRefitWork(NamedTuple):
    """Picklable work unit: one stream's planned refit.

    The solve runs serially inside the unit (the batch itself is the
    parallel dimension) and without cache/trace plumbing, which cannot
    cross a process boundary; the session re-attaches results — and
    hit-rate accounting — in the parent.
    """

    key: str
    family: ResilienceModel
    curve: ResilienceCurve
    fit_kwargs: dict
    solver_kwargs: dict


class PlannedRefit(NamedTuple):
    """One stream's due refit, snapshotted by :meth:`ForecastSession.refit_plans`.

    The snapshot pins the forecaster *instance* alongside its key:
    :meth:`ForecastSession.adopt_refits` only installs the fit if that
    exact instance is still registered under the key, so streams
    removed — or removed and re-registered — while the batch was in
    flight are skipped instead of being corrupted with a stale fit.
    """

    key: str
    forecaster: OnlineForecaster
    plan: Any  # _RefitPlan; private to repro.serving.online
    work: _BatchRefitWork


#: Plumbing for batch work units: the batch itself is the parallel
#: dimension, and cache/trace handles cannot cross a process boundary,
#: so each unit solves serially with both disabled (the session
#: re-attaches hit-rate accounting in the parent).
_BATCH_REFIT_OPTIONS = EngineOptions(cache=False, trace=False, executor="serial")


def _execute_batch_refit(work: _BatchRefitWork) -> tuple[str, FitResult]:
    # Plan kwargs (warm starts, shrunk budgets) win over the session's
    # baseline solver kwargs, mirroring the inline merge order.
    kwargs = {**work.solver_kwargs, **work.fit_kwargs}
    return work.key, fit_least_squares(
        work.family,
        work.curve,
        options=_BATCH_REFIT_OPTIONS,
        **kwargs,
    )


class ForecastSession:
    """A batch scheduler for many concurrent online forecasts.

    Parameters
    ----------
    options:
        :class:`~repro.fitting.EngineOptions` shared by every stream —
        resolved once; all forecasters reuse the same cache, tracer,
        and executor instance.
    family, policy, candidates:
        Defaults for streams registered (or auto-registered) without
        their own.
    """

    def __init__(
        self,
        *,
        options: EngineOptions | None = None,
        family: ResilienceModel | str = "competing_risks",
        policy: RefitPolicy | None = None,
        candidates: Sequence[ResilienceModel | str] | None = None,
    ) -> None:
        self.options = options if options is not None else EngineOptions()
        self._engine = self.options.resolve()
        # Streams share concrete plumbing, so hand each forecaster an
        # options bundle already pinned to the resolved instances.
        self._stream_options = self.options.replace(
            cache=(
                self._engine.cache if self._engine.cache is not None else False
            ),
            trace=self._engine.tracer,
            executor=self._engine.executor,
            n_workers=None,
        )
        self._default_family = family
        self._default_policy = policy
        self._default_candidates = candidates
        self._forecasters: dict[str, OnlineForecaster] = {}

    # ------------------------------------------------------------------
    # Stream registry
    # ------------------------------------------------------------------
    def register(
        self,
        key: str,
        *,
        family: ResilienceModel | str | None = None,
        policy: RefitPolicy | None = None,
        candidates: Sequence[ResilienceModel | str] | None = None,
        nominal: float | None = None,
    ) -> OnlineForecaster:
        """Create and track a new stream under *key*."""
        if key in self._forecasters:
            raise ServingError(f"stream {key!r} is already registered")
        forecaster = OnlineForecaster(
            family if family is not None else self._default_family,
            options=self._stream_options,
            policy=policy if policy is not None else self._default_policy,
            candidates=(
                candidates if candidates is not None else self._default_candidates
            ),
            key=key,
            nominal=nominal,
        )
        self._forecasters[key] = forecaster
        return forecaster

    def unregister(self, key: str) -> OnlineForecaster:
        """Remove and return the stream under *key*.

        A batched refit already in flight for the stream is discarded at
        adoption time (see :meth:`adopt_refits`) rather than installed
        into a forecaster the session no longer tracks.

        Raises
        ------
        StreamNotFound
            If *key* is not registered.
        """
        try:
            return self._forecasters.pop(key)
        except KeyError:
            raise StreamNotFound(
                f"unknown stream {key!r}; {len(self._forecasters)} registered"
            ) from None

    def __getitem__(self, key: str) -> OnlineForecaster:
        try:
            return self._forecasters[key]
        except KeyError:
            raise StreamNotFound(
                f"unknown stream {key!r}; {len(self._forecasters)} registered"
            ) from None

    def __contains__(self, key: str) -> bool:
        return key in self._forecasters

    def __len__(self) -> int:
        return len(self._forecasters)

    def __iter__(self) -> Iterator[str]:
        return iter(self._forecasters)

    def keys(self) -> tuple[str, ...]:
        """Registered stream keys, in registration order."""
        return tuple(self._forecasters)

    @property
    def forecasters(self) -> Mapping[str, OnlineForecaster]:
        """Read-only view of the tracked streams."""
        return dict(self._forecasters)

    # ------------------------------------------------------------------
    # Observation routing
    # ------------------------------------------------------------------
    def observe(self, key: str, t: float, p: float) -> None:
        """Route one observation to stream *key*, auto-registering it."""
        if key not in self._forecasters:
            self.register(key)
        self._forecasters[key].observe(t, p)

    def push(self, event: StreamEvent) -> OnlineForecaster:
        """Route one :class:`~repro.datasets.stream.StreamEvent`."""
        self.observe(event.key, event.time, event.performance)
        return self._forecasters[event.key]

    # ------------------------------------------------------------------
    # Batch refitting
    # ------------------------------------------------------------------
    def refit_plans(self) -> list[PlannedRefit]:
        """Snapshot every stream's due refit, without solving anything.

        The plan/execute/adopt split exists for the async server: plans
        are built on the event loop (cheap — each is a curve snapshot
        plus solver kwargs), :meth:`execute_refits` runs the blocking
        solves on a worker thread, and :meth:`adopt_refits` installs the
        results back on the loop. The registry is snapshotted up front,
        so streams may be added or removed while the solves run.
        """
        solver_kwargs = {
            name: value
            for name, value in self.options.to_kwargs().items()
            if name in ("jac", "seed", "n_random_starts", "max_nfev")
        }
        planned: list[PlannedRefit] = []
        for key, forecaster in list(self._forecasters.items()):
            plan = forecaster.refit_plan()
            if plan is not None:
                work = _BatchRefitWork(
                    key, plan.family, plan.curve, plan.fit_kwargs, solver_kwargs
                )
                planned.append(PlannedRefit(key, forecaster, plan, work))
        return planned

    def execute_refits(self, planned: Sequence[PlannedRefit]) -> list[FitResult]:
        """Solve *planned* as one batch on the shared executor.

        Pure compute: session state is untouched, so this step is safe
        to run off-thread while the event loop keeps serving.
        """
        if not planned:
            return []
        outcomes = self._engine.executor.map(
            _execute_batch_refit, [entry.work for entry in planned]
        )
        return [fit for _, fit in outcomes]

    def adopt_refits(
        self,
        planned: Sequence[PlannedRefit],
        fits: Sequence[FitResult],
        *,
        allow_reselect: bool = True,
    ) -> dict[str, FitResult]:
        """Install batch results through each forecaster's adoption path.

        A plan whose stream was unregistered — or unregistered and
        re-registered as a *new* forecaster — while the batch was in
        flight is skipped: the solve is discarded rather than installed
        into a stream it no longer describes. Returns the fits actually
        adopted, keyed by stream. ``allow_reselect`` threads through to
        :meth:`OnlineForecaster.adopt_fit` — pass ``False`` when
        adopting on an event loop so drift never triggers an inline
        reselection sweep.
        """
        results: dict[str, FitResult] = {}
        for entry, fit in zip(planned, fits):
            if self._forecasters.get(entry.key) is not entry.forecaster:
                continue
            entry.forecaster.adopt_fit(
                fit, entry.plan, allow_reselect=allow_reselect
            )
            results[entry.key] = fit
        return results

    def refit_stale(self) -> dict[str, FitResult]:
        """Refit every stream whose policy says a refit is due.

        The due streams' planned solves run as one batch on the shared
        executor — each solve runs serially inside its work unit — and
        the results are installed through each forecaster's normal
        adoption path (counters, reselection). Results are keyed by
        stream and identical to refitting each stream inline. Streams
        unregistered between planning and adoption are skipped (see
        :meth:`adopt_refits`).
        """
        planned = self.refit_plans()
        if not planned:
            return {}
        return self.adopt_refits(planned, self.execute_refits(planned))

    # ------------------------------------------------------------------
    # Forecast surface
    # ------------------------------------------------------------------
    def forecast(
        self,
        key: str,
        horizon: float,
        *,
        n_points: int = 25,
        confidence: float = 0.95,
        allow_refit: bool = True,
    ) -> Forecast:
        """Forecast for one stream (see
        :meth:`OnlineForecaster.forecast`)."""
        return self[key].forecast(
            horizon,
            n_points=n_points,
            confidence=confidence,
            allow_refit=allow_refit,
        )

    def report(self, key: str, **kwargs: Any) -> ForecastReport:
        """Report for one stream (see :meth:`OnlineForecaster.report`)."""
        return self[key].report(**kwargs)

    def stats(self) -> dict[str, Any]:
        """Aggregated per-stream counters plus cache statistics."""
        totals: dict[str, int] = {}
        for forecaster in self._forecasters.values():
            for name, value in forecaster.stats.items():
                totals[name] = totals.get(name, 0) + value
        payload: dict[str, Any] = {
            "streams": len(self._forecasters),
            **totals,
        }
        if self._engine.cache is not None:
            payload["cache"] = self._engine.cache.stats()
        return payload
