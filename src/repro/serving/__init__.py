"""Online forecast serving: incremental fits over live curves.

The subsystem the ROADMAP's production north star asks for:
:class:`~repro.serving.online.OnlineForecaster` keeps one growing
curve's forecast fresh with warm-started incremental refits;
:class:`~repro.serving.session.ForecastSession` multiplexes a fleet of
such streams over one shared cache/tracer/executor; and
:func:`~repro.serving.replay.replay_forecasts` replays recorded
datasets through the service (the ``repro serve-replay`` CLI).

Unlike the batch entry points, everything here takes engine
configuration only as an :class:`~repro.fitting.EngineOptions` bundle.
"""

from repro.serving.online import (
    Forecast,
    ForecastReport,
    OnlineForecaster,
    RefitPolicy,
)
from repro.serving.replay import replay_forecasts
from repro.serving.session import ForecastSession

__all__ = [
    "Forecast",
    "ForecastReport",
    "ForecastSession",
    "OnlineForecaster",
    "RefitPolicy",
    "replay_forecasts",
]
