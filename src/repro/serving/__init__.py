"""Online forecast serving: incremental fits over live curves.

The subsystem the ROADMAP's production north star asks for:
:class:`~repro.serving.online.OnlineForecaster` keeps one growing
curve's forecast fresh with warm-started incremental refits;
:class:`~repro.serving.session.ForecastSession` multiplexes a fleet of
such streams over one shared cache/tracer/executor; and
:func:`~repro.serving.replay.replay_forecasts` replays recorded
datasets through the service (the ``repro serve-replay`` CLI).
:class:`~repro.serving.server.ForecastServer` puts the session behind
an asyncio JSONL-over-TCP protocol (the ``repro serve`` CLI) with
admission control and per-request SLO accounting, and
:class:`~repro.serving.remediation.RemediationLoop` auto-heals streams
whose incumbent family stopped tracking the curve.

Unlike the batch entry points, everything here takes engine
configuration only as an :class:`~repro.fitting.EngineOptions` bundle.
"""

from repro.serving.errors import (
    AdmissionError,
    ProtocolError,
    RefitTimeout,
    StreamNotFound,
    error_code,
)
from repro.serving.online import (
    Forecast,
    ForecastReport,
    OnlineForecaster,
    RefitPolicy,
)
from repro.serving.remediation import RemediationLoop
from repro.serving.replay import replay_forecasts
from repro.serving.server import ForecastServer, ServerConfig
from repro.serving.session import ForecastSession

__all__ = [
    "AdmissionError",
    "Forecast",
    "ForecastReport",
    "ForecastServer",
    "ForecastSession",
    "OnlineForecaster",
    "ProtocolError",
    "RefitPolicy",
    "RefitTimeout",
    "RemediationLoop",
    "ServerConfig",
    "StreamNotFound",
    "error_code",
    "replay_forecasts",
]
