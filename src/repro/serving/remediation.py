"""Auto-remediation: the fleet heals its own degraded forecasts.

A :class:`~repro.serving.session.ForecastSession` refits on the cadence
its :class:`~repro.serving.online.RefitPolicy` prescribes, but a warm
refit cannot save a stream whose incumbent *family* stopped tracking
the curve — an L-shaped outage served by a quadratic keeps predicting a
recovery that never comes. :class:`RemediationLoop` closes that loop
without operator input, in four stages:

detector
    :meth:`RemediationLoop.detect` reads each stream's
    :meth:`~repro.serving.online.OnlineForecaster.drift` — the relative
    per-point SSE degradation of the incumbent fit on the curve as
    grown — and flags streams above
    :attr:`RemediationConfig.drift_threshold`.
proposer
    Mild drift proposes a **warm** refit of the incumbent family;
    drift beyond :attr:`RemediationConfig.reselect_threshold` (or a
    non-finite incumbent) proposes full **reselection** with
    :func:`~repro.fitting.fit_many` across the candidate families.
verifier
    Every proposal is fitted on the curve *minus* its last
    :attr:`RemediationConfig.holdout_points` observations and scored on
    those held-out points. A candidate is adopted only if its held-out
    SSE strictly beats the incumbent's — then refit warm on the full
    curve and installed via
    :meth:`~repro.serving.online.OnlineForecaster.install_fit`.
scheduler
    Proposals are drained from a priority queue (worst drift first)
    under the per-cycle compute budget
    :attr:`RemediationConfig.budget`; the rest wait for the next cycle.

Like the session's batched refits, a cycle splits into
:meth:`RemediationLoop.plan` (cheap, snapshots state),
:meth:`RemediationLoop.execute` (pure solves, safe to run off-thread),
and :meth:`RemediationLoop.adopt` (installs results) — the async server
(:mod:`repro.serving.server`) runs the middle stage on a worker thread
while the event loop keeps serving. :meth:`RemediationLoop.run_cycle`
chains all three for synchronous callers.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, NamedTuple, Sequence

import numpy as np

from repro.core.curve import ResilienceCurve
from repro.exceptions import ConvergenceError, ServingError
from repro.fitting.least_squares import fit_least_squares, fit_many
from repro.fitting.options import EngineOptions
from repro.fitting.result import FitResult
from repro.models.base import ResilienceModel
from repro.models.registry import make_model
from repro.observability.metrics import MetricsRegistry
from repro.serving.online import OnlineForecaster
from repro.serving.session import ForecastSession

__all__ = [
    "CycleReport",
    "Detection",
    "RemediationConfig",
    "RemediationLoop",
    "RemediationOutcome",
    "RemediationPlan",
    "execute_remediation",
]


#: Remediation solves run serially inside :meth:`RemediationLoop.execute`
#: (which itself may run on a worker thread) with cache and trace off —
#: the same isolation contract as the session's batched refit units.
_REMEDIATION_OPTIONS = EngineOptions(cache=False, trace=False, executor="serial")


@dataclass(frozen=True)
class RemediationConfig:
    """Knobs of one :class:`RemediationLoop`.

    Attributes
    ----------
    drift_threshold:
        Relative per-point SSE drift above which a stream is flagged
        (``0.25`` = the incumbent is 25% worse per point than when it
        was fitted).
    reselect_threshold:
        Drift above which the proposer escalates from a warm refit of
        the incumbent family to full reselection across the candidate
        families. Must be >= *drift_threshold*; non-finite drift
        (incumbent diverged on the new points) always escalates.
    holdout_points:
        Trailing observations withheld from the candidate fit and used
        by the verifier to score candidate vs. incumbent.
    budget:
        Proposals *executed* per cycle — the compute budget. Flagged
        streams beyond it stay queued for the next cycle (worst drift
        is always served first).
    min_train_points:
        Minimum observations that must remain after the holdout split;
        streams with shorter curves are never proposed.
    """

    drift_threshold: float = 0.25
    reselect_threshold: float = 1.0
    holdout_points: int = 4
    budget: int = 4
    min_train_points: int = 6

    def __post_init__(self) -> None:
        if self.drift_threshold < 0.0:
            raise ServingError(
                f"drift_threshold must be >= 0, got {self.drift_threshold}"
            )
        if self.reselect_threshold < self.drift_threshold:
            raise ServingError(
                f"reselect_threshold ({self.reselect_threshold}) must be >= "
                f"drift_threshold ({self.drift_threshold})"
            )
        if self.holdout_points < 1:
            raise ServingError(
                f"holdout_points must be >= 1, got {self.holdout_points}"
            )
        if self.budget < 1:
            raise ServingError(f"budget must be >= 1, got {self.budget}")
        if self.min_train_points < 3:
            raise ServingError(
                f"min_train_points must be >= 3, got {self.min_train_points}"
            )


class Detection(NamedTuple):
    """One flagged stream: its key and the drift that flagged it."""

    key: str
    drift: float


class RemediationPlan(NamedTuple):
    """One scheduled proposal, snapshotted on the control thread.

    Everything :meth:`RemediationLoop.execute` needs is captured here
    by value (curves are immutable snapshots), so the solve stage
    touches no live session state. The forecaster *instance* is pinned
    so adoption can detect unregister/re-register races, exactly like
    :class:`~repro.serving.session.PlannedRefit`.
    """

    key: str
    forecaster: OnlineForecaster
    kind: str  # "warm" | "reselect"
    drift: float
    incumbent_family: ResilienceModel
    incumbent_params: tuple[float, ...]
    candidates: tuple[ResilienceModel, ...]
    train: ResilienceCurve
    full: ResilienceCurve
    holdout_times: tuple[float, ...]
    holdout_perf: tuple[float, ...]
    solver_kwargs: dict


class RemediationOutcome(NamedTuple):
    """The verifier's verdict on one executed proposal.

    ``fit`` is the full-curve refit to install when ``adopted`` is
    true, ``None`` otherwise. Both held-out SSEs are kept for
    reporting either way.
    """

    key: str
    kind: str
    adopted: bool
    family_changed: bool
    candidate_holdout_sse: float
    incumbent_holdout_sse: float
    family: ResilienceModel | None
    fit: FitResult | None


def _holdout_sse(
    family: ResilienceModel,
    params: tuple[float, ...],
    times: tuple[float, ...],
    perf: tuple[float, ...],
) -> float:
    """SSE of *family(params)* on the held-out points (inf if non-finite)."""
    predicted = family.evaluate(np.asarray(times, dtype=np.float64), params)
    if not np.all(np.isfinite(predicted)):
        return float("inf")
    return float(np.sum((predicted - np.asarray(perf, dtype=np.float64)) ** 2))


def execute_remediation(plan: RemediationPlan) -> RemediationOutcome:
    """Fit, verify, and (on a win) finalize one proposal. Pure compute.

    Module-level and driven only by the plan snapshot, so it can run on
    any worker the caller chooses.
    """
    solver = dict(plan.solver_kwargs)
    family: ResilienceModel | None = None
    try:
        if plan.kind == "reselect":
            # Reselection scores every candidate family on the held-out
            # tail — the verifier's own metric — not on train SSE. A
            # flexible family can track the pre-drift shape (low train
            # SSE) and still extrapolate the drifted regime badly; the
            # holdout is what the adopted fit must survive.
            results = fit_many(
                plan.candidates, plan.train, options=_REMEDIATION_OPTIONS, **solver
            )
            if not results:
                raise ConvergenceError(
                    f"no candidate family converged for {plan.key!r}"
                )
            scored = []
            for order, fam in enumerate(plan.candidates):
                result = results.get(fam.name)
                if result is None:
                    continue
                sse = _holdout_sse(
                    result.model,
                    result.model.params,
                    plan.holdout_times,
                    plan.holdout_perf,
                )
                scored.append((sse, order, fam, result))
            _, _, family, candidate = min(scored, key=lambda s: s[:2])
        else:
            family = plan.incumbent_family
            candidate = fit_least_squares(
                family,
                plan.train,
                options=_REMEDIATION_OPTIONS,
                extra_starts=(plan.incumbent_params,),
                **solver,
            )
    except ConvergenceError:
        return RemediationOutcome(
            plan.key, plan.kind, False, False, float("inf"), float("nan"),
            None, None,
        )

    candidate_sse = _holdout_sse(
        candidate.model, candidate.model.params, plan.holdout_times, plan.holdout_perf
    )
    incumbent_sse = _holdout_sse(
        plan.incumbent_family,
        plan.incumbent_params,
        plan.holdout_times,
        plan.holdout_perf,
    )
    if not candidate_sse < incumbent_sse:
        return RemediationOutcome(
            plan.key, plan.kind, False, False, candidate_sse, incumbent_sse,
            None, None,
        )
    # Verified win: one warm solve on the full curve from the candidate
    # optimum, so the installed fit covers every observation.
    try:
        final = fit_least_squares(
            family,
            plan.full,
            options=_REMEDIATION_OPTIONS,
            starts=(candidate.model.params,),
            **solver,
        )
    except ConvergenceError:
        return RemediationOutcome(
            plan.key, plan.kind, False, False, candidate_sse, incumbent_sse,
            None, None,
        )
    return RemediationOutcome(
        plan.key,
        plan.kind,
        True,
        family.name != plan.incumbent_family.name,
        candidate_sse,
        incumbent_sse,
        family,
        final,
    )


@dataclass
class CycleReport:
    """Counters from one :meth:`RemediationLoop.run_cycle`."""

    detected: int = 0
    executed: int = 0
    adopted: int = 0
    rejected: int = 0
    reselected: int = 0
    queued: int = 0
    outcomes: list[RemediationOutcome] = field(default_factory=list)

    def to_dict(self) -> dict[str, int]:
        return {
            "detected": self.detected,
            "executed": self.executed,
            "adopted": self.adopted,
            "rejected": self.rejected,
            "reselected": self.reselected,
            "queued": self.queued,
        }


class RemediationLoop:
    """Detector → proposer → verifier → scheduler over one session.

    Parameters
    ----------
    session:
        The :class:`~repro.serving.session.ForecastSession` to heal.
    candidates:
        Families reselection chooses from (names or instances). The
        flagged stream's incumbent is always added, so reselection can
        conclude "keep the family, refit it".
    config:
        :class:`RemediationConfig`; defaults are conservative.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`
        receiving ``remediation.*`` counters (the server passes its
        own, so SLO and remediation accounting land in one place).
    """

    def __init__(
        self,
        session: ForecastSession,
        *,
        candidates: Sequence[ResilienceModel | str] = (
            "quadratic",
            "competing_risks",
            "wei-exp",
        ),
        config: RemediationConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.session = session
        self.config = config if config is not None else RemediationConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._candidates: tuple[ResilienceModel, ...] = tuple(
            make_model(c) if isinstance(c, str) else c for c in candidates
        )
        if not self._candidates:
            raise ServingError("remediation needs at least one candidate family")
        #: Keys executed this cycle are skipped by the next detect()
        #: until their stream grows again — prevents thrashing a stream
        #: whose verified-best fit still drifts.
        self._cooldown: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Detector
    # ------------------------------------------------------------------
    def detect(self) -> list[Detection]:
        """Streams whose incumbent fit drifted past the threshold."""
        flagged: list[Detection] = []
        for key, forecaster in self.session.forecasters.items():
            if forecaster.fit is None:
                continue
            cooldown_n = self._cooldown.get(key)
            if cooldown_n is not None and forecaster.n_observations <= cooldown_n:
                continue
            drift = forecaster.drift()
            if drift is None:
                continue
            if drift > self.config.drift_threshold:
                flagged.append(Detection(key, float(drift)))
        self.metrics.inc("remediation.detected", len(flagged))
        return flagged

    # ------------------------------------------------------------------
    # Proposer + scheduler
    # ------------------------------------------------------------------
    def plan(self, detections: Sequence[Detection] | None = None) -> list[RemediationPlan]:
        """The proposals this cycle's budget affords, worst drift first.

        Detections beyond the budget (or with curves too short to split
        off a holdout) are left for later cycles. Snapshots everything
        the solve needs; safe to call while requests mutate the
        session between cycles.
        """
        if detections is None:
            detections = self.detect()
        queue: list[tuple[float, int, Detection]] = []
        for order, detection in enumerate(detections):
            priority = (
                -math.inf if math.isinf(detection.drift) else -detection.drift
            )
            heapq.heappush(queue, (priority, order, detection))

        plans: list[RemediationPlan] = []
        while queue and len(plans) < self.config.budget:
            _, _, detection = heapq.heappop(queue)
            built = self._plan_one(detection)
            if built is not None:
                plans.append(built)
        self.metrics.inc("remediation.planned", len(plans))
        self.metrics.inc("remediation.queued", len(queue))
        return plans

    def _plan_one(self, detection: Detection) -> RemediationPlan | None:
        forecaster = self.session.forecasters.get(detection.key)
        if forecaster is None or forecaster.fit is None:
            return None
        full = forecaster.curve
        k = self.config.holdout_points
        if len(full) - k < self.config.min_train_points:
            return None
        train = ResilienceCurve(
            full.times[:-k],
            full.performance[:-k],
            nominal=full.nominal,
            name=f"{detection.key}-train",
        )
        kind = (
            "reselect"
            if (
                not math.isfinite(detection.drift)
                or detection.drift > self.config.reselect_threshold
            )
            else "warm"
        )
        incumbent = forecaster.family
        candidates = self._candidates
        if all(f.name != incumbent.name for f in candidates):
            candidates = (incumbent, *candidates)
        solver_kwargs = {
            name: value
            for name, value in self.session.options.to_kwargs().items()
            if name in ("jac", "seed", "n_random_starts", "max_nfev")
        }
        fit = forecaster.fit
        return RemediationPlan(
            key=detection.key,
            forecaster=forecaster,
            kind=kind,
            drift=detection.drift,
            incumbent_family=incumbent,
            incumbent_params=fit.model.params,
            candidates=candidates,
            train=train,
            full=full,
            holdout_times=tuple(float(t) for t in full.times[-k:]),
            holdout_perf=tuple(float(p) for p in full.performance[-k:]),
            solver_kwargs=solver_kwargs,
        )

    # ------------------------------------------------------------------
    # Verifier (pure compute)
    # ------------------------------------------------------------------
    def execute(
        self, plans: Sequence[RemediationPlan]
    ) -> list[RemediationOutcome]:
        """Run every planned solve + holdout verification. Pure compute;
        the server calls this on a worker thread."""
        return [execute_remediation(plan) for plan in plans]

    # ------------------------------------------------------------------
    # Adoption
    # ------------------------------------------------------------------
    def adopt(
        self,
        plans: Sequence[RemediationPlan],
        outcomes: Sequence[RemediationOutcome],
    ) -> CycleReport:
        """Install verified wins; account for everything else.

        A plan whose stream was unregistered (or re-registered as a new
        forecaster) while the solves ran is dropped, mirroring
        :meth:`~repro.serving.session.ForecastSession.adopt_refits`.
        """
        report = CycleReport()
        report.executed = len(outcomes)
        for plan, outcome in zip(plans, outcomes):
            report.outcomes.append(outcome)
            live = self.session.forecasters.get(plan.key)
            if live is not plan.forecaster:
                report.rejected += 1
                self.metrics.inc("remediation.dropped_stale")
                continue
            self._cooldown[plan.key] = plan.forecaster.n_observations
            if not outcome.adopted:
                report.rejected += 1
                self.metrics.inc("remediation.rejected")
                continue
            assert outcome.fit is not None and outcome.family is not None
            plan.forecaster.install_fit(outcome.fit, family=outcome.family)
            report.adopted += 1
            self.metrics.inc("remediation.adopted")
            if outcome.family_changed:
                report.reselected += 1
                self.metrics.inc("remediation.reselected")
        return report

    # ------------------------------------------------------------------
    # Synchronous cycle
    # ------------------------------------------------------------------
    def run_cycle(self) -> CycleReport:
        """One full detect → plan → execute → adopt pass, inline."""
        detections = self.detect()
        plans = self.plan(detections)
        outcomes = self.execute(plans)
        report = self.adopt(plans, outcomes)
        report.detected = len(detections)
        report.queued = max(len(detections) - len(plans), 0)
        return report

    def stats(self) -> dict[str, Any]:
        """The ``remediation.*`` counters as a plain dict."""
        snapshot = self.metrics.snapshot()["counters"]
        return {
            name: value
            for name, value in snapshot.items()
            if name.startswith("remediation.")
        }
