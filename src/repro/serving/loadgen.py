"""Synthetic load harness for :class:`~repro.serving.server.ForecastServer`.

Drives the JSONL protocol with a fleet of synthetic outage episodes
(the :func:`~repro.datasets.outage.generate_fleet` generator), proving
the server's concurrency story at bench scale: every stream stays
registered for the whole run — *n_streams* is the concurrent-stream
count, not a total — while observations round-robin across the fleet
over a handful of pipelined TCP connections.

The run has three phases:

1. **Fill**: every stream's observations are delivered in round-robin
   rounds of ``obs_batch`` points, so the whole fleet is registered
   (and concurrent) from the first round on.
2. **Probe**: ``reject_probes`` extra ``register`` requests are sent
   into the full fleet — each must be rejected with a 429, making the
   admission-rejection count deterministic — and ``forecast`` requests
   are issued for a sample of streams (retrying briefly on 429 when
   the first-fit slots are saturated).
3. **Account**: one ``stats`` request reads the server's SLO
   percentiles and counters; the client folds in its own tallies
   (responses by status, retries, wall clock, peak RSS).

:func:`run_load` drives an already-running server;
:func:`run_self_load` additionally hosts one on the same event loop —
the shape the bench workload, the CI smoke job, and ``repro
serve-load`` all use.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path
from typing import Any, Sequence

from repro.exceptions import ServingError
from repro.serving.server import ForecastServer, ServerConfig

__all__ = ["run_load", "run_load_sync", "run_self_load"]

#: Requests a connection keeps in flight before reading responses.
PIPELINE_WINDOW = 128


class _Tally:
    """Client-side accounting shared by every connection task."""

    def __init__(self) -> None:
        self.requests = 0
        self.ok = 0
        self.errors: dict[int, int] = {}
        self.forecasts_ok = 0
        self.forecast_retries = 0

    def record(self, response: dict[str, Any]) -> None:
        self.requests += 1
        if response.get("ok"):
            self.ok += 1
            if response.get("op") == "forecast":
                self.forecasts_ok += 1
        else:
            code = int(response.get("error", {}).get("code", 0))
            self.errors[code] = self.errors.get(code, 0) + 1

    def rejections(self) -> int:
        return self.errors.get(429, 0)


class _Connection:
    """One pipelined JSONL connection."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self._outstanding = 0

    async def send(self, request: dict[str, Any], tally: _Tally) -> None:
        """Pipeline one request, draining responses past the window."""
        self.writer.write(json.dumps(request).encode("utf-8") + b"\n")
        self._outstanding += 1
        if self._outstanding >= PIPELINE_WINDOW:
            await self.writer.drain()
            await self.drain(tally, keep=PIPELINE_WINDOW // 2)

    async def call(self, request: dict[str, Any], tally: _Tally) -> dict[str, Any]:
        """Round-trip one request (draining anything outstanding first)."""
        await self.drain(tally, keep=0)
        self.writer.write(json.dumps(request).encode("utf-8") + b"\n")
        await self.writer.drain()
        line = await self.reader.readline()
        if not line:
            raise ServingError("server closed the connection mid-request")
        response = json.loads(line)
        tally.record(response)
        return response

    async def drain(self, tally: _Tally, *, keep: int = 0) -> None:
        while self._outstanding > keep:
            line = await self.reader.readline()
            if not line:
                raise ServingError(
                    f"server closed the connection with "
                    f"{self._outstanding} responses outstanding"
                )
            tally.record(json.loads(line))
            self._outstanding -= 1

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # repro-lint: disable=R6
            pass  # benign teardown race: the server closed first


def _fleet_observations(
    n_streams: int,
    observations: int,
    seed: int,
    scenario: Sequence[str] | None,
    workdir: Path,
) -> list[tuple[str, list[tuple[float, float]]]]:
    """``(key, [(t, p), ...])`` per stream from the outage generator."""
    from repro.datasets.outage import generate_fleet, iter_fleet_curves

    store = generate_fleet(
        n_streams,
        workdir / "loadgen_fleet",
        scenarios=scenario,
        seed=seed,
        n_points=observations,
        horizon=float(observations - 1),
        chunk_size=min(max(n_streams, 1), 2048),
        overwrite=True,
    )
    streams: list[tuple[str, list[tuple[float, float]]]] = []
    for index, curve in enumerate(iter_fleet_curves(store)):
        streams.append(
            (
                f"load-{index:06d}",
                [
                    (float(t), float(p))
                    for t, p in zip(curve.times, curve.performance)
                ],
            )
        )
    return streams


def _peak_rss_mb() -> float:
    import resource

    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return float(peak_kb) / 1024.0


async def run_load(
    host: str,
    port: int,
    *,
    n_streams: int = 1000,
    observations: int = 10,
    obs_batch: int = 5,
    connections: int = 8,
    forecast_streams: int = 64,
    forecast_retries: int = 20,
    reject_probes: int = 32,
    scenario: Sequence[str] | None = None,
    seed: int = 0,
    horizon: float = 12.0,
    settle_seconds: float = 0.0,
    workdir: str | Path | None = None,
) -> dict[str, Any]:
    """Drive a running server; return the load report (see module doc).

    *n_streams* streams stay concurrently registered for the whole run.
    The target server must have ``max_streams == n_streams`` for the
    ``reject_probes`` admission arithmetic to hold (extra registers
    into a full fleet are deterministically rejected).
    """
    if n_streams < 1:
        raise ServingError(f"n_streams must be >= 1, got {n_streams}")
    if observations < 2:
        raise ServingError(f"observations must be >= 2, got {observations}")
    if obs_batch < 1:
        raise ServingError(f"obs_batch must be >= 1, got {obs_batch}")
    connections = max(1, min(connections, n_streams))

    if workdir is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-loadgen-")
        workroot = Path(scratch.name)
    else:
        scratch = None
        workroot = Path(workdir)
    try:
        # Fleet-fixture generation writes an episode store — blocking
        # I/O that must not stall the loop driving the connections.
        streams = await asyncio.get_running_loop().run_in_executor(
            None,
            _fleet_observations,
            n_streams,
            observations,
            seed,
            scenario,
            workroot,
        )
        tally = _Tally()
        links: list[_Connection] = []
        for _ in range(connections):
            reader, writer = await asyncio.open_connection(host, port)
            links.append(_Connection(reader, writer))

        start = time.perf_counter()

        # Phase 1 — fill: round-robin batched observations, one slice of
        # the fleet per connection, all connections concurrently.
        async def fill(link: _Connection, slice_index: int) -> None:
            mine = streams[slice_index::connections]
            for offset in range(0, observations, obs_batch):
                for key, points in mine:
                    batch = points[offset : offset + obs_batch]
                    if not batch:
                        continue
                    await link.send(
                        {
                            "op": "observe",
                            "key": key,
                            "points": [[t, p] for t, p in batch],
                        },
                        tally,
                    )
            await link.drain(tally, keep=0)

        await asyncio.gather(
            *(fill(link, index) for index, link in enumerate(links))
        )
        fill_seconds = time.perf_counter() - start

        # Optional settle window between fill and probe, giving the
        # server's refit ticker a chance to batch the fleet's due fits
        # (so the probe-phase forecasts are served warm).
        if settle_seconds > 0:
            await asyncio.sleep(settle_seconds)

        # Phase 2a — deterministic admission probes into the full fleet.
        probe_link = links[0]
        for probe in range(reject_probes):
            await probe_link.send(
                {"op": "register", "key": f"probe-{probe:04d}"}, tally
            )
        await probe_link.drain(tally, keep=0)

        # Phase 2b — forecasts for a sample of streams, retrying briefly
        # while the first-fit slots are saturated.
        sample = streams[:: max(1, n_streams // max(forecast_streams, 1))]
        sample = sample[:forecast_streams]
        forecasts_requested = len(sample)
        for index, (key, _points) in enumerate(sample):
            link = links[index % connections]
            for attempt in range(forecast_retries + 1):
                response = await link.call(
                    {"op": "forecast", "key": key, "horizon": horizon}, tally
                )
                if response.get("ok"):
                    break
                code = response.get("error", {}).get("code")
                if code != 429 or attempt == forecast_retries:
                    break
                tally.forecast_retries += 1
                await asyncio.sleep(0.05)

        # Phase 3 — account: server-side SLO + counters.
        stats = (await links[0].call({"op": "stats"}, tally))["result"]
        wall = time.perf_counter() - start
        for link in links:
            await link.close()
    finally:
        if scratch is not None:
            scratch.cleanup()

    server_counters = stats["server"]
    return {
        "workload": {
            "n_streams": n_streams,
            "observations": observations,
            "obs_batch": obs_batch,
            "connections": connections,
            "seed": seed,
            "requests": tally.requests,
            "requests_per_sec": tally.requests / wall if wall > 0 else 0.0,
            "fill_seconds": fill_seconds,
            "wall_seconds": wall,
        },
        "streams": {
            "registered": int(stats["session"]["streams"]),
            "observations": int(stats["session"].get("observations", 0)),
        },
        "latency_ms": {
            "p50": float(stats["slo"]["p50_ms"]),
            "p99": float(stats["slo"]["p99_ms"]),
        },
        "admission": {
            "rejected_register": int(
                server_counters.get("serve.rejected_register", 0)
            ),
            "rejected_refit": int(server_counters.get("serve.rejected_refit", 0)),
            "client_429_responses": tally.rejections(),
            "reject_probes": reject_probes,
        },
        "refits": {
            "ticks": int(server_counters.get("serve.refit_ticks", 0)),
            "adopted": int(server_counters.get("serve.refits_adopted", 0)),
            "first_fits": int(server_counters.get("serve.first_fits", 0)),
        },
        "forecasts": {
            "requested": forecasts_requested,
            "succeeded": tally.forecasts_ok,
            "retries": tally.forecast_retries,
        },
        "protocol_errors": int(server_counters.get("serve.protocol_errors", 0)),
        "max_rss_mb": _peak_rss_mb(),
    }


async def run_self_load(
    config: ServerConfig | None = None, **load_kwargs: Any
) -> dict[str, Any]:
    """Host a server on this loop and drive :func:`run_load` against it.

    The server's ``max_streams`` is pinned to the load's ``n_streams``
    so the admission arithmetic in the report is exact. Returns the
    load report with the final server stats attached under
    ``"server_stats"``.
    """
    n_streams = int(load_kwargs.get("n_streams", 1000))
    base = config if config is not None else ServerConfig()
    server = ForecastServer(base.replace(max_streams=n_streams))
    host, port = await server.start()
    try:
        report = await run_load(host, port, **load_kwargs)
    finally:
        await server.stop()
    report["server_stats"] = server.stats()
    return report


def run_load_sync(
    host: str | None = None,
    port: int | None = None,
    *,
    config: ServerConfig | None = None,
    **load_kwargs: Any,
) -> dict[str, Any]:
    """Synchronous wrapper: drive ``(host, port)``, or self-host when
    no address is given."""
    if host is not None and port is not None:
        return asyncio.run(run_load(host, port, **load_kwargs))
    if host is not None or port is not None:
        raise ServingError("pass both host and port, or neither")
    return asyncio.run(run_self_load(config, **load_kwargs))
