"""Online forecasting: one curve under construction, continuously fit.

:class:`OnlineForecaster` wraps a :class:`~repro.core.curve.ResilienceCurve`
that is still being observed. ``observe(t, p)`` appends points;
``forecast(horizon)`` and ``report()`` return the current best fit,
the predicted trajectory with its Eq. (13) confidence band, the
predicted recovery time, and the paper's eight interval metrics —
refitting lazily and *incrementally* by warm-starting from the
previous optimum.

Refit mechanics
---------------
The first fit (and any policy-scheduled "full" refit) runs the normal
cold multi-start sweep. Every other refit warm-starts: the previous
optimum becomes the only start (or is prepended to a small random
budget via :attr:`RefitPolicy.warm_random_starts`), because a curve
that grew by a few points almost never moves the optimum to a
different basin. :class:`RefitPolicy` controls *when* refits happen
(every k points and/or when the incumbent's SSE drifts) and when the
incumbent family is re-selected via
:func:`~repro.fitting.fit_many` across candidate families.

:meth:`OnlineForecaster.finalize` runs one cold fit with the exact
configuration of a one-shot :func:`~repro.fitting.fit_least_squares`
call, so a fully replayed curve reproduces the batch optimum
bit-identically.

The serving layer accepts engine configuration *only* as an
:class:`~repro.fitting.EngineOptions` bundle, resolved once at
construction so every refit shares the same cache/tracer/executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.curve import ResilienceCurve
from repro.exceptions import ConvergenceError, ReproError, ServingError
from repro.fitting.least_squares import fit_least_squares, fit_many
from repro.fitting.options import EngineOptions, ResolvedEngine
from repro.fitting.result import FitResult
from repro.metrics.predictive import (
    PredictiveMetricReport,
    predictive_metric_report,
)
from repro.models.base import ResilienceModel
from repro.models.registry import make_model
from repro.validation.intervals import ConfidenceBand, confidence_band

__all__ = ["Forecast", "ForecastReport", "OnlineForecaster", "RefitPolicy"]


@dataclass(frozen=True)
class RefitPolicy:
    """When and how an :class:`OnlineForecaster` refits.

    Attributes
    ----------
    every_k:
        Refit once this many unfitted observations accumulate. ``1``
        (the default) refits on every new point; ``None`` disables the
        cadence trigger (then *sse_drift* must be set).
    sse_drift:
        Relative per-point SSE drift that forces a refit between
        cadence ticks: refit when the incumbent model's SSE/point on
        the grown curve exceeds ``(1 + sse_drift)`` times its fitted
        SSE/point. ``None`` disables the drift trigger.
    warm_random_starts:
        Random starts solved *in addition to* the previous optimum on a
        warm refit. ``0`` (the default) makes warm refits a single
        solve from the previous optimum — the fast path.
    full_refit_every:
        Run every Nth refit with the full cold multi-start budget
        (previous optimum still injected), guarding against a warm
        chain that got stuck in a stale basin. ``None`` never schedules
        one.
    reselect_drift:
        Relative degradation of the incumbent family's per-point SSE —
        against the best it ever achieved on this stream — that
        triggers model reselection with
        :func:`~repro.fitting.fit_many` over the candidate families.
        ``None`` disables reselection.
    min_points:
        Observations required before the first fit; ``None`` defaults
        to ``family.n_params + 2``.
    """

    every_k: int | None = 1
    sse_drift: float | None = None
    warm_random_starts: int = 0
    full_refit_every: int | None = None
    reselect_drift: float | None = None
    min_points: int | None = None

    def __post_init__(self) -> None:
        if self.every_k is None and self.sse_drift is None:
            raise ServingError(
                "RefitPolicy needs at least one trigger: set every_k "
                "and/or sse_drift"
            )
        if self.every_k is not None and self.every_k < 1:
            raise ServingError(f"every_k must be >= 1, got {self.every_k}")
        if self.sse_drift is not None and self.sse_drift < 0.0:
            raise ServingError(f"sse_drift must be >= 0, got {self.sse_drift}")
        if self.warm_random_starts < 0:
            raise ServingError(
                f"warm_random_starts must be >= 0, got {self.warm_random_starts}"
            )
        if self.full_refit_every is not None and self.full_refit_every < 1:
            raise ServingError(
                f"full_refit_every must be >= 1, got {self.full_refit_every}"
            )
        if self.min_points is not None and self.min_points < 2:
            raise ServingError(f"min_points must be >= 2, got {self.min_points}")


@dataclass(frozen=True)
class Forecast:
    """One forecast snapshot from an :class:`OnlineForecaster`.

    ``times`` spans from the last observation to ``last + horizon``;
    ``band`` is the Eq. (13) confidence band over those times. ``age``
    counts observations received since the underlying fit.
    """

    key: str
    model_name: str
    params: tuple[float, ...]
    sse: float
    n_observations: int
    n_fit: int
    times: tuple[float, ...]
    band: ConfidenceBand
    recovery_time: float | None
    refit_performed: bool

    @property
    def age(self) -> int:
        """Observations received since the fit was computed."""
        return self.n_observations - self.n_fit

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (one replay update line)."""
        return {
            "key": self.key,
            "model": self.model_name,
            "params": [float(v) for v in self.params],
            "sse": float(self.sse),
            "n": self.n_observations,
            "n_fit": self.n_fit,
            "refit": self.refit_performed,
            "recovery_time": self.recovery_time,
            "times": [float(t) for t in self.times],
            "center": [float(v) for v in self.band.center],
            "lower": [float(v) for v in self.band.lower],
            "upper": [float(v) for v in self.band.upper],
            "confidence": float(self.band.confidence),
        }


@dataclass(frozen=True)
class ForecastReport:
    """A :class:`Forecast` plus the eight interval metrics."""

    forecast: Forecast
    metrics: PredictiveMetricReport

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        payload = self.forecast.to_dict()
        payload["metrics"] = {
            row.name: {
                "actual": float(row.actual),
                "predicted": float(row.predicted),
                "delta": float(row.delta),
            }
            for row in self.metrics.rows
        }
        return payload

    def to_table(self) -> str:
        """The metric table, headed by the fit summary."""
        forecast = self.forecast
        recovery = (
            f"{forecast.recovery_time:.2f}"
            if forecast.recovery_time is not None
            else "n/a"
        )
        head = (
            f"{forecast.key}: {forecast.model_name} on "
            f"{forecast.n_observations} points (SSE {forecast.sse:.3e}, "
            f"recovery {recovery})"
        )
        return head + "\n" + self.metrics.to_table()


class _RefitPlan:
    """One planned refit: the solver kwargs plus bookkeeping labels.

    Built by :meth:`OnlineForecaster.refit_plan` and consumed either
    inline or by :class:`~repro.serving.session.ForecastSession`'s
    batch scheduler (which runs the solve elsewhere and hands the
    result back to :meth:`OnlineForecaster.adopt_fit`).
    """

    __slots__ = ("family", "curve", "kind", "fit_kwargs")

    def __init__(
        self,
        family: ResilienceModel,
        curve: ResilienceCurve,
        kind: str,
        fit_kwargs: dict[str, Any],
    ) -> None:
        self.family = family
        self.curve = curve
        self.kind = kind  # "cold" | "warm" | "full"
        self.fit_kwargs = fit_kwargs


class OnlineForecaster:
    """A resilience curve under construction, with a live forecast.

    Parameters
    ----------
    family:
        Incumbent model family (name or unbound instance).
    options:
        :class:`~repro.fitting.EngineOptions` bundle — the serving
        layer's only engine-configuration input. Resolved once here;
        all refits share the resolved cache/tracer/executor.
    policy:
        :class:`RefitPolicy`; defaults to refit-on-every-point.
    candidates:
        Families considered when reselection triggers (see
        :attr:`RefitPolicy.reselect_drift`). The incumbent is always
        included.
    key:
        Stream label used in forecasts and replay output.
    nominal:
        Nominal performance level; ``None`` uses the first observation.
    """

    def __init__(
        self,
        family: ResilienceModel | str = "competing_risks",
        *,
        options: EngineOptions | None = None,
        policy: RefitPolicy | None = None,
        candidates: Sequence[ResilienceModel | str] | None = None,
        key: str = "online",
        nominal: float | None = None,
    ) -> None:
        self.key = key
        self._family = make_model(family) if isinstance(family, str) else family
        self.options = options if options is not None else EngineOptions()
        self.policy = policy if policy is not None else RefitPolicy()
        self._candidates: tuple[ResilienceModel, ...] = tuple(
            make_model(c) if isinstance(c, str) else c
            for c in (candidates or ())
        )
        if self.policy.reselect_drift is not None and not self._candidates:
            raise ServingError(
                "reselect_drift is set but no candidate families were given"
            )
        self._nominal = nominal

        engine: ResolvedEngine = self.options.resolve()
        self._engine = engine
        # Per-fit options: the solver knobs from the user's bundle, with
        # the plumbing pinned to the resolved instances so every refit
        # shares one cache/tracer and the multi-starts run on the chosen
        # backend. Pinning (rather than re-resolving each fit) keeps the
        # service's behavior fixed even if the environment changes
        # mid-stream.
        self._fit_options = self.options.replace(
            cache=engine.cache if engine.cache is not None else False,
            trace=engine.tracer,
            executor=engine.executor,
            n_workers=None,
        )

        self._times: list[float] = []
        self._performance: list[float] = []
        self._curve_cache: ResilienceCurve | None = None
        self._fit: FitResult | None = None
        self._fit_n = 0
        self._n_refits = 0
        self._best_per_point: float | None = None
        #: Plain counters, always maintained (the tracer's metrics
        #: registry mirrors them when tracing is enabled).
        self.stats: dict[str, int] = {
            "observations": 0,
            "refits_warm": 0,
            "refits_cold": 0,
            "refits_full": 0,
            "reselections": 0,
            "forecasts": 0,
        }

    # ------------------------------------------------------------------
    # Observation intake
    # ------------------------------------------------------------------
    def observe(self, t: float, p: float) -> None:
        """Append one observation. Times must be strictly increasing."""
        t = float(t)
        p = float(p)
        if not (np.isfinite(t) and np.isfinite(p)):
            raise ServingError(f"observation must be finite, got ({t}, {p})")
        if self._times and t <= self._times[-1]:
            raise ServingError(
                f"observation at t={t} is not after the last time "
                f"{self._times[-1]} (stream {self.key!r})"
            )
        self._times.append(t)
        self._performance.append(p)
        self._curve_cache = None
        self.stats["observations"] += 1
        if self._tracer.enabled:
            self._tracer.metrics.inc("serving.observations")

    def observe_many(self, points: Iterable[tuple[float, float]]) -> None:
        """Append several ``(t, p)`` observations in order."""
        for t, p in points:
            self.observe(t, p)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def _tracer(self) -> Any:
        return self._engine.tracer

    @property
    def family(self) -> ResilienceModel:
        """The incumbent (unbound) model family."""
        return self._family

    @property
    def n_observations(self) -> int:
        return len(self._times)

    @property
    def min_points(self) -> int:
        """Observations required before the first fit."""
        if self.policy.min_points is not None:
            return self.policy.min_points
        return self._family.n_params + 2

    @property
    def ready(self) -> bool:
        """Whether enough observations arrived for a fit."""
        return len(self._times) >= max(self.min_points, 2)

    @property
    def curve(self) -> ResilienceCurve:
        """The observed curve so far (requires ≥ 2 observations)."""
        if len(self._times) < 2:
            raise ServingError(
                f"stream {self.key!r} has {len(self._times)} observation(s); "
                f"a curve needs at least 2"
            )
        if self._curve_cache is None:
            self._curve_cache = ResilienceCurve(
                self._times,
                self._performance,
                nominal=self._nominal,
                name=self.key,
            )
        return self._curve_cache

    @property
    def fit(self) -> FitResult | None:
        """The most recent fit, without triggering a refit."""
        return self._fit

    @property
    def pending(self) -> int:
        """Observations received since the current fit."""
        return len(self._times) - self._fit_n

    # ------------------------------------------------------------------
    # Refit machinery
    # ------------------------------------------------------------------
    def _drift(self) -> float | None:
        """Relative per-point SSE drift of the incumbent on the grown
        curve, or ``None`` when it cannot be computed."""
        if self._fit is None or self._fit_n == 0 or self._fit.sse <= 0.0:
            return None
        curve = self.curve
        sse_now = self._fit.model.sse(curve, self._fit.model.params)
        if not np.isfinite(sse_now):
            return float("inf")
        fitted_per_point = self._fit.sse / self._fit_n
        return (sse_now / len(curve)) / fitted_per_point - 1.0

    def drift(self) -> float | None:
        """Relative per-point SSE drift of the incumbent fit.

        How much worse (relative, e.g. ``0.25`` = 25%) the incumbent
        model's per-point SSE is on the curve *as grown since the fit*,
        compared to its per-point SSE at fit time. ``None`` when there
        is no fit yet (or the fitted SSE is degenerate); ``inf`` when
        the incumbent has gone non-finite on the new points. This is
        the signal the remediation detector
        (:mod:`repro.serving.remediation`) watches.
        """
        return self._drift()

    def refit_due(self) -> bool:
        """Whether the policy calls for a refit right now."""
        if not self.ready:
            return False
        if self._fit is None:
            return True
        if self.pending <= 0:
            return False
        if self.policy.every_k is not None and self.pending >= self.policy.every_k:
            return True
        if self.policy.sse_drift is not None:
            drift = self._drift()
            if drift is not None and drift > self.policy.sse_drift:
                return True
        return False

    def refit_plan(self) -> _RefitPlan | None:
        """The refit the policy wants now, or ``None``.

        Exposed so :class:`~repro.serving.session.ForecastSession` can
        execute many streams' plans on one executor; pair with
        :meth:`adopt_fit`.
        """
        if not self.refit_due():
            return None
        curve = self.curve
        previous = None if self._fit is None else self._fit.model.params
        if previous is None:
            return _RefitPlan(self._family, curve, "cold", {})
        full_due = (
            self.policy.full_refit_every is not None
            and (self._n_refits % self.policy.full_refit_every) == 0
        )
        if full_due:
            return _RefitPlan(
                self._family, curve, "full", {"extra_starts": (previous,)}
            )
        if self.policy.warm_random_starts == 0:
            kwargs: dict[str, Any] = {"starts": (previous,)}
        else:
            kwargs = {
                "extra_starts": (previous,),
                "n_random_starts": self.policy.warm_random_starts,
            }
        return _RefitPlan(self._family, curve, "warm", kwargs)

    def _execute_plan(self, plan: _RefitPlan) -> FitResult:
        return fit_least_squares(
            plan.family, plan.curve, options=self._fit_options, **plan.fit_kwargs
        )

    def adopt_fit(
        self,
        fit: FitResult,
        plan: _RefitPlan,
        *,
        allow_reselect: bool = True,
    ) -> None:
        """Install a fit computed from *plan* (inline or by a session).

        ``allow_reselect=False`` installs the fit but skips the
        drift-triggered model reselection (a cold ``fit_many`` sweep).
        The async server adopts this way on the event loop — the drift
        watermark still updates, and the remediation loop performs the
        actual reselection off-thread.
        """
        self._fit = fit
        self._fit_n = len(plan.curve)
        self._n_refits += 1
        self.stats[f"refits_{plan.kind}"] += 1
        if self._tracer.enabled:
            self._tracer.metrics.inc(f"serving.refit.{plan.kind}")
        per_point = fit.sse / max(self._fit_n, 1)
        if self._best_per_point is None or per_point < self._best_per_point:
            self._best_per_point = per_point
        elif (
            allow_reselect
            and self.policy.reselect_drift is not None
            and self._best_per_point > 0.0
            and per_point / self._best_per_point - 1.0 > self.policy.reselect_drift
        ):
            self._reselect(plan.curve)

    def install_fit(
        self, fit: FitResult, *, family: ResilienceModel | None = None
    ) -> None:
        """Install *fit* (and optionally a new incumbent *family*).

        The adoption path for externally computed fits — the
        remediation loop's verifier calls this after a proposed refit
        or reselection beats the incumbent on held-out points. The
        per-stream best-SSE watermark resets to the installed fit, so
        reselection drift is measured against the new family from here
        on.
        """
        if family is not None:
            self._family = family
        self._fit = fit
        self._fit_n = len(self._times)
        self._n_refits += 1
        self._best_per_point = fit.sse / max(self._fit_n, 1)

    def _reselect(self, curve: ResilienceCurve) -> None:
        """Refit all candidate families cold and adopt the best."""
        families = list(self._candidates)
        if all(f.name != self._family.name for f in families):
            families.insert(0, self._family)
        # _fit_options already pins executor to the resolved backend, so
        # the candidate loop parallelizes on it via the options bundle.
        results = fit_many(families, curve, options=self._fit_options)
        self.stats["reselections"] += 1
        if self._tracer.enabled:
            self._tracer.metrics.inc("serving.reselections")
        try:
            best = results.best()
        except ConvergenceError:
            return  # keep the incumbent; nothing converged
        if best.model.name != self._family.name:
            by_name = {f.name: f for f in families}
            self._family = by_name[best.model.name]
        self._fit = best
        self._fit_n = len(curve)
        self._best_per_point = best.sse / max(len(curve), 1)

    def _ensure_fit(self) -> tuple[FitResult, bool]:
        """Current fit, refitting first if the policy demands it.

        Returns ``(fit, refit_performed)``.
        """
        if not self.ready:
            raise ServingError(
                f"stream {self.key!r} has {len(self._times)} observation(s); "
                f"needs {self.min_points} before the first fit"
            )
        plan = self.refit_plan()
        if plan is None:
            assert self._fit is not None
            return self._fit, False
        t0 = time.perf_counter()
        fit = self._execute_plan(plan)
        self.adopt_fit(fit, plan)
        if self._tracer.enabled:
            self._tracer.metrics.observe(
                "serving.refit_seconds", time.perf_counter() - t0
            )
        assert self._fit is not None
        return self._fit, True

    def refit(self) -> FitResult:
        """Force a policy-driven refit check and return the current fit."""
        return self._ensure_fit()[0]

    # ------------------------------------------------------------------
    # Forecast surface
    # ------------------------------------------------------------------
    def forecast(
        self,
        horizon: float,
        *,
        n_points: int = 25,
        confidence: float = 0.95,
        allow_refit: bool = True,
    ) -> Forecast:
        """Predicted trajectory over the next *horizon* time units.

        The band is the Eq. (13) confidence band of the current fit
        evaluated on an ``n_points`` grid from the last observation to
        ``last + horizon``; the recovery time is the model's first
        return to the nominal level.

        ``allow_refit=False`` serves the incumbent fit as-is even when
        the policy says a refit is due (raising if there is no fit
        yet). The async server forecasts this way so a request never
        blocks the event loop on a solve; freshness is delegated to the
        batched refit ticker and the remediation loop.
        """
        if horizon <= 0.0:
            raise ServingError(f"horizon must be positive, got {horizon}")
        if n_points < 2:
            raise ServingError(f"n_points must be >= 2, got {n_points}")
        if allow_refit:
            fit, refit_performed = self._ensure_fit()
        else:
            if self._fit is None:
                raise ServingError(
                    f"stream {self.key!r} has no fit yet and allow_refit "
                    f"is off"
                )
            fit, refit_performed = self._fit, False
        last = self._times[-1]
        future = np.linspace(last, last + float(horizon), int(n_points))
        band = confidence_band(
            fit.predict(future), fit.sse, self._fit_n, confidence=confidence
        )
        self.stats["forecasts"] += 1
        if self._tracer.enabled:
            self._tracer.metrics.inc("serving.forecasts")
        return Forecast(
            key=self.key,
            model_name=fit.model.name,
            params=fit.model.params,
            sse=fit.sse,
            n_observations=len(self._times),
            n_fit=self._fit_n,
            times=tuple(float(t) for t in future),
            band=band,
            recovery_time=self._recovery_time(fit),
            refit_performed=refit_performed,
        )

    def _recovery_time(self, fit: FitResult) -> float | None:
        curve = self.curve
        horizon = 100.0 * max(curve.duration, 1.0)
        try:
            return float(fit.model.recovery_time(curve.nominal, horizon=horizon))
        except (ReproError, ValueError):
            return None

    def report(
        self,
        *,
        horizon: float | None = None,
        n_points: int = 25,
        confidence: float = 0.95,
        alpha: float = 0.5,
        allow_refit: bool = True,
    ) -> ForecastReport:
        """Forecast plus the eight interval metrics on the observed curve.

        The metrics treat the whole observed window as the predictive
        interval (split at the first observation), comparing the model's
        trajectory against everything seen so far. *horizon* defaults to
        half the observed duration (at least one time unit).
        ``allow_refit`` threads through to :meth:`forecast` — the async
        server reports with it off so a report never solves inline.
        """
        curve = self.curve
        if horizon is None:
            horizon = max(curve.duration / 2.0, 1.0)
        forecast = self.forecast(
            horizon,
            n_points=n_points,
            confidence=confidence,
            allow_refit=allow_refit,
        )
        fit = self._fit
        assert fit is not None
        metrics = predictive_metric_report(
            fit.model, curve, float(curve.times[0]), alpha=alpha
        )
        return ForecastReport(forecast=forecast, metrics=metrics)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> FitResult:
        """One cold fit of the full observed curve.

        Uses the exact solver configuration of a one-shot
        :func:`~repro.fitting.fit_least_squares` call with this
        forecaster's options — no warm starts — so the result is
        bit-identical to fitting the completed curve in one batch call
        (and shares its cache entries).
        """
        fit = fit_least_squares(self._family, self.curve, options=self._fit_options)
        self._fit = fit
        self._fit_n = len(self._times)
        return fit
