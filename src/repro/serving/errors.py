"""Typed serving errors, mapped to wire-protocol status codes.

The serving subsystem used to raise one flat
:class:`~repro.exceptions.ServingError` for every misuse. A network
front end needs more structure than that: the server must translate
each failure into a machine-readable protocol error code, and clients
must be able to distinguish "the fleet is full, back off" from "you
asked about a stream that does not exist". Each subclass below carries
a :attr:`ServingError.code` — an HTTP-flavored integer the JSONL
protocol (:mod:`repro.serving.server`) embeds in its error responses —
so the exception type *is* the protocol mapping.

:class:`~repro.exceptions.ServingError` remains the base class (and
keeps its historical ``code`` of 400, the generic bad-request bucket),
so existing ``except ServingError`` handlers keep catching everything.
"""

from __future__ import annotations

from repro.exceptions import ServingError

__all__ = [
    "AdmissionError",
    "ProtocolError",
    "RefitTimeout",
    "StreamNotFound",
    "error_code",
]


class AdmissionError(ServingError):
    """The server refused new work to protect the fleet.

    Raised when registering a stream would exceed the ``max_streams``
    cap, or when a fit-triggering request arrives while every
    ``max_inflight_refits`` slot is busy. Protocol code 429: the client
    should back off and retry.
    """

    code = 429


class StreamNotFound(ServingError):
    """A request referenced a stream key that is not registered.

    Protocol code 404. Raised by
    :meth:`~repro.serving.session.ForecastSession.__getitem__` and by
    server operations that (unlike ``observe``) never auto-register.
    """

    code = 404


class RefitTimeout(ServingError):
    """A scheduled refit did not complete within the request deadline.

    Protocol code 504. The solve keeps running in its worker — a later
    request for the same stream may find the fit installed — but the
    response the client is waiting on is abandoned.
    """

    code = 504


class ProtocolError(ServingError):
    """A request line could not be parsed or named an unknown operation.

    Protocol code 400 (same bucket as the base class, but raised only
    by the wire layer, so counters can tell malformed *requests* apart
    from invalid *usage* of the session API).
    """

    code = 400


def error_code(exc: BaseException) -> int:
    """The protocol status code for *exc* (500 for non-serving errors)."""
    if isinstance(exc, ServingError):
        return int(getattr(exc, "code", 400))
    return 500
