"""Replay a recorded dataset through the online forecasting service.

:func:`replay_forecasts` feeds a stream of
:class:`~repro.datasets.stream.StreamEvent` into a
:class:`~repro.serving.session.ForecastSession` and yields
JSON-serializable dicts: one ``update`` per (sampled) observation,
one ``final`` per stream at end-of-stream (the bit-identical
:meth:`~repro.serving.online.OnlineForecaster.finalize` fit), and one
closing ``summary``. The ``repro serve-replay`` CLI subcommand prints
these as JSONL.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.datasets.stream import StreamEvent
from repro.fitting.options import EngineOptions
from repro.models.base import ResilienceModel
from repro.serving.online import RefitPolicy
from repro.serving.session import ForecastSession

__all__ = ["replay_forecasts"]


def replay_forecasts(
    events: Iterable[StreamEvent],
    *,
    horizon: float = 12.0,
    every: int = 1,
    n_points: int = 10,
    confidence: float = 0.95,
    family: ResilienceModel | str = "competing_risks",
    options: EngineOptions | None = None,
    policy: RefitPolicy | None = None,
    candidates: Sequence[ResilienceModel | str] | None = None,
    finalize: bool = True,
    session: ForecastSession | None = None,
) -> Iterator[dict[str, Any]]:
    """Replay *events* as live traffic and yield forecast updates.

    Parameters
    ----------
    events:
        Time-ordered observation stream, e.g. from
        :func:`~repro.datasets.stream.replay_recessions`. Streams are
        auto-registered by event key.
    horizon:
        Forecast horizon (same time units as the stream).
    every:
        Emit an update every this-many observations per stream (the
        refit cadence is governed by *policy*, not by this).
    n_points:
        Grid points per emitted forecast trajectory.
    family, options, policy, candidates:
        Session defaults (see :class:`ForecastSession`); ignored when
        an existing *session* is supplied.
    finalize:
        Emit one ``final`` record per stream after the last event: a
        cold full-curve fit bit-identical to the one-shot batch fit.
    session:
        Reuse an existing session instead of building one.

    Yields
    ------
    dict
        ``{"type": "update", ...}`` per sampled observation,
        ``{"type": "final", ...}`` per stream, then one
        ``{"type": "summary", ...}``.
    """
    if session is None:
        session = ForecastSession(
            options=options, family=family, policy=policy, candidates=candidates
        )
    n_events = 0
    for event in events:
        forecaster = session.push(event)
        n_events += 1
        if not forecaster.ready:
            continue
        if every > 1 and (event.index + 1) % every != 0:
            continue
        forecast = forecaster.forecast(
            horizon, n_points=n_points, confidence=confidence
        )
        payload = forecast.to_dict()
        payload["type"] = "update"
        payload["t"] = event.time
        payload["p"] = event.performance
        yield payload
    if finalize:
        for key in session.keys():
            forecaster = session[key]
            if not forecaster.ready:
                continue
            fit = forecaster.finalize()
            yield {
                "type": "final",
                "key": key,
                "model": fit.model.name,
                "params": [float(v) for v in fit.model.params],
                "sse": float(fit.sse),
                "converged": bool(fit.converged),
                "n": len(forecaster.curve),
            }
    yield {"type": "summary", "events": n_events, **session.stats()}
