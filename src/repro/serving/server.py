"""Async JSONL-over-TCP front end for a :class:`ForecastSession` fleet.

One :class:`ForecastServer` multiplexes thousands of concurrent streams
over a single :class:`~repro.serving.session.ForecastSession`. Clients
hold ordinary TCP connections and exchange newline-delimited JSON: one
request object per line in, one response object per line out, answered
in order per connection, so a client may pipeline freely.

Request/response schema (see docs/serving.md for the full protocol)::

    → {"id": 7, "op": "observe", "key": "s1", "t": 3.0, "p": 0.91}
    ← {"id": 7, "ok": true, "op": "observe", "result": {...},
       "elapsed_ms": 0.04}
    → {"id": 8, "op": "forecast", "key": "s1", "horizon": 12}
    ← {"id": 8, "ok": false, "op": "forecast", "elapsed_ms": 0.1,
       "error": {"code": 429, "type": "AdmissionError", "message": ...}}

Design rules, in order of importance:

* **The event loop never solves.** Forecasts are served from the
  incumbent fit (``allow_refit=False``); staleness is repaid by the
  batched refit ticker, which runs the session's
  plan → execute → adopt split with the blocking solves on a worker
  thread, and by the optional remediation loop
  (:mod:`repro.serving.remediation`), run the same way. The only
  solve a request can trigger is a stream's *first* fit, which runs
  in the default executor under the inflight cap.
* **Admission control over queueing.** Registering beyond
  :attr:`ServerConfig.max_streams`, or needing a first fit while all
  :attr:`ServerConfig.max_inflight_refits` slots are busy, fails fast
  with a 429-style :class:`~repro.serving.errors.AdmissionError`
  rather than parking work on an unbounded queue.
* **Backpressure on slow consumers.** Every response write awaits
  ``drain()``, so a connection whose client stops reading suspends
  its own request processing instead of growing the write buffer.
* **Per-request SLO accounting.** Every response carries
  ``elapsed_ms`` (and honors a client ``deadline_ms`` tag); latencies
  land in a :class:`~repro.observability.metrics.MetricsRegistry`
  histogram per op, so ``stats`` answers p50/p99 straight from the
  sliding window.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from dataclasses import dataclass, field
from typing import Any

from repro._env import read_env
from repro.exceptions import ReproError, ServingError
from repro.fitting.options import EngineOptions
from repro.fitting.result import FitResult
from repro.observability.metrics import MetricsRegistry
from repro.serving.errors import (
    AdmissionError,
    ProtocolError,
    RefitTimeout,
    StreamNotFound,
    error_code,
)
from repro.serving.online import OnlineForecaster, RefitPolicy
from repro.serving.remediation import RemediationLoop
from repro.serving.session import ForecastSession

__all__ = ["ForecastServer", "ServerConfig"]

#: Ops the dispatcher accepts (the protocol surface).
SERVER_OPS: tuple[str, ...] = (
    "ping",
    "register",
    "unregister",
    "observe",
    "forecast",
    "report",
    "drift",
    "stats",
)


@dataclass(frozen=True)
class ServerConfig:
    """Everything a :class:`ForecastServer` needs to bind and behave.

    Attributes
    ----------
    host, port:
        Bind address; port ``0`` asks the OS for an ephemeral port
        (read the real one from :attr:`ForecastServer.address`).
    max_streams:
        Admission cap on concurrently registered streams; registration
        (explicit or ``observe`` auto-registration) beyond it is
        rejected with a 429.
    max_inflight_refits:
        First-fit solves allowed in flight at once. A ``forecast`` or
        ``report`` that needs a first fit while every slot is busy is
        rejected with a 429 rather than queued.
    refit_interval:
        Seconds between batched refit ticks (``refit_stale`` with the
        solves on a worker thread). ``0`` disables the ticker — then
        only first fits and remediation update models.
    refit_timeout:
        Deadline in seconds for a request-triggered first fit; on
        expiry the request fails with a 504
        :class:`~repro.serving.errors.RefitTimeout` (the solve itself
        keeps running and installs when done).
    refit_batch_limit:
        Most plans one refit tick executes; the rest stay due and are
        picked up by later ticks. Bounds how long a tick occupies the
        worker thread at fleet scale (10k due streams would otherwise
        pin it for minutes). ``0`` removes the bound.
    remediation_interval:
        Seconds between remediation cycles; ``0`` disables the loop.
    refit_every_k:
        The fleet-wide :class:`~repro.serving.online.RefitPolicy`
        cadence (refit a stream after this many new observations).
    family:
        Default model family for auto-registered streams.
    default_horizon:
        Horizon (time units) used by ``forecast`` requests that omit
        one.
    max_request_bytes:
        Per-line read limit; longer request lines are a protocol
        error and close the connection.
    options:
        :class:`~repro.fitting.EngineOptions` for the underlying
        session — the serving layer's only engine-configuration input.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_streams: int = 10_000
    max_inflight_refits: int = 2
    refit_interval: float = 0.25
    refit_timeout: float = 30.0
    refit_batch_limit: int = 256
    remediation_interval: float = 0.0
    refit_every_k: int = 8
    family: str = "competing_risks"
    default_horizon: float = 12.0
    max_request_bytes: int = 1 << 20
    options: EngineOptions = field(default_factory=EngineOptions)

    def __post_init__(self) -> None:
        if self.max_streams < 1:
            raise ServingError(f"max_streams must be >= 1, got {self.max_streams}")
        if self.max_inflight_refits < 1:
            raise ServingError(
                f"max_inflight_refits must be >= 1, got {self.max_inflight_refits}"
            )
        for name in ("refit_interval", "remediation_interval"):
            if getattr(self, name) < 0.0:
                raise ServingError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.refit_timeout <= 0.0:
            raise ServingError(
                f"refit_timeout must be positive, got {self.refit_timeout}"
            )
        if self.refit_batch_limit < 0:
            raise ServingError(
                f"refit_batch_limit must be >= 0, got {self.refit_batch_limit}"
            )
        if self.max_request_bytes < 1024:
            raise ServingError(
                f"max_request_bytes must be >= 1024, got {self.max_request_bytes}"
            )

    @classmethod
    def from_env(cls, **overrides: Any) -> "ServerConfig":
        """A config from the ``REPRO_SERVE_*`` environment, then *overrides*.

        Every variable is registered in
        :data:`repro._env.REGISTERED_ENV_VARS`; unset ones keep the
        dataclass defaults.
        """
        settings: dict[str, Any] = {}
        env_fields: tuple[tuple[str, str, Any], ...] = (
            ("REPRO_SERVE_HOST", "host", str),
            ("REPRO_SERVE_PORT", "port", int),
            ("REPRO_SERVE_MAX_STREAMS", "max_streams", int),
            ("REPRO_SERVE_MAX_INFLIGHT_REFITS", "max_inflight_refits", int),
            ("REPRO_SERVE_REFIT_INTERVAL", "refit_interval", float),
            ("REPRO_SERVE_REFIT_TIMEOUT", "refit_timeout", float),
        )
        for env_name, field_name, convert in env_fields:
            raw = read_env(env_name)
            if raw is None or raw == "":
                continue
            try:
                settings[field_name] = convert(raw)
            except ValueError as exc:
                raise ServingError(f"{env_name}={raw!r}: {exc}") from exc
        settings.update(overrides)
        return cls(**settings)

    def replace(self, **changes: Any) -> "ServerConfig":
        """A copy with *changes* applied."""
        return dataclasses.replace(self, **changes)


def _error_body(exc: BaseException) -> dict[str, Any]:
    return {
        "code": error_code(exc),
        "type": type(exc).__name__,
        "message": str(exc),
    }


class ForecastServer:
    """The asyncio JSONL-over-TCP forecast service.

    Parameters
    ----------
    config:
        :class:`ServerConfig`; defaults serve on an ephemeral local
        port.
    session:
        An existing :class:`~repro.serving.session.ForecastSession` to
        serve (tests inject pre-populated fleets); by default one is
        built from the config's options, family, and refit cadence.
    remediation:
        An existing :class:`~repro.serving.remediation.RemediationLoop`
        over the same session; by default one is built (sharing this
        server's metrics registry) whenever
        :attr:`ServerConfig.remediation_interval` is positive.

    Usage::

        server = ForecastServer(ServerConfig(port=0))
        await server.start()
        host, port = server.address
        ...
        await server.stop()
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        *,
        session: ForecastSession | None = None,
        remediation: RemediationLoop | None = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.session = (
            session
            if session is not None
            else ForecastSession(
                options=self.config.options,
                family=self.config.family,
                policy=RefitPolicy(every_k=self.config.refit_every_k),
            )
        )
        self.metrics = MetricsRegistry()
        self.remediation = remediation
        if self.remediation is None and self.config.remediation_interval > 0:
            self.remediation = RemediationLoop(
                self.session, metrics=self.metrics
            )
        self._server: asyncio.AbstractServer | None = None
        self._tickers: list[asyncio.Task] = []
        self._first_fits: dict[str, asyncio.Task] = {}
        self._inflight_refits = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (requires :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServingError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> tuple[str, int]:
        """Bind, start the refit/remediation tickers, return the address."""
        if self._server is not None:
            raise ServingError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_request_bytes,
        )
        if self.config.refit_interval > 0:
            self._tickers.append(
                asyncio.create_task(
                    self._ticker(self.config.refit_interval, self.refit_tick)
                )
            )
        if self.remediation is not None and self.config.remediation_interval > 0:
            self._tickers.append(
                asyncio.create_task(
                    self._ticker(
                        self.config.remediation_interval, self.remediation_tick
                    )
                )
            )
        return self.address

    async def serve_forever(self) -> None:
        """Block until cancelled (pair with :meth:`start`)."""
        if self._server is None:
            raise ServingError("server is not started")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop tickers, close the listener, wait for a clean shutdown."""
        for task in self._tickers:
            task.cancel()
        for task in self._tickers:
            try:
                await task
            except asyncio.CancelledError:  # repro-lint: disable=R6
                pass  # the cancellation we just requested
        self._tickers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Background tickers
    # ------------------------------------------------------------------
    async def _ticker(self, interval: float, tick: Any) -> None:
        while True:
            await asyncio.sleep(interval)
            try:
                await tick()
            except asyncio.CancelledError:
                raise
            except ReproError:
                # A failed batch must not kill the ticker; the next
                # tick retries with fresh plans.
                self.metrics.inc("serve.ticker_errors")

    async def refit_tick(self) -> dict[str, FitResult]:
        """One batched-refit pass: plan on the loop, solve off-thread,
        adopt on the loop. Returns the adopted fits by stream."""
        planned = self.session.refit_plans()
        if not planned:
            return {}
        limit = self.config.refit_batch_limit
        if limit and len(planned) > limit:
            # Worst-staleness first: oldest pending observations win the
            # bounded batch; the rest stay due for the next tick.
            planned.sort(key=lambda entry: entry.forecaster.pending, reverse=True)
            self.metrics.inc("serve.refits_deferred", len(planned) - limit)
            planned = planned[:limit]
        loop = asyncio.get_running_loop()
        with self.metrics.timer("serve.refit_tick_seconds"):
            fits = await loop.run_in_executor(
                None, self.session.execute_refits, planned
            )
        # allow_reselect=False: adoption happens on the loop, so a
        # drift-triggered reselection sweep (cold fit_many) must not
        # ride along — the remediation loop reselects off-thread.
        adopted = self.session.adopt_refits(planned, fits, allow_reselect=False)
        self.metrics.inc("serve.refit_ticks")
        self.metrics.inc("serve.refits_adopted", len(adopted))
        return adopted

    async def remediation_tick(self) -> dict[str, int]:
        """One remediation cycle with the solves on a worker thread."""
        assert self.remediation is not None
        plans = self.remediation.plan()
        if not plans:
            return {"detected": 0, "executed": 0, "adopted": 0}
        loop = asyncio.get_running_loop()
        outcomes = await loop.run_in_executor(
            None, self.remediation.execute, plans
        )
        report = self.remediation.adopt(plans, outcomes)
        return report.to_dict()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.inc("serve.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Request line exceeded max_request_bytes: answer
                    # with a protocol error, then drop the connection —
                    # the stream is no longer line-synchronized.
                    oversize = ProtocolError(
                        "request line exceeds "
                        f"{self.config.max_request_bytes} bytes"
                    )
                    self._count_error(oversize)
                    await self._write(
                        writer,
                        {"id": None, "ok": False, "error": _error_body(oversize)},
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_line(line)
                await self._write(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            self.metrics.inc("serve.connection_resets")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # repro-lint: disable=R6
                pass  # benign teardown race: the client closed first

    async def _write(
        self, writer: asyncio.StreamWriter, payload: dict[str, Any]
    ) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        # Backpressure: a consumer that stops reading suspends this
        # connection's processing here instead of growing the buffer.
        await writer.drain()

    async def _handle_line(self, line: bytes) -> dict[str, Any]:
        start = time.perf_counter()
        request_id: Any = None
        deadline: float | None = None
        op = "?"
        try:
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ProtocolError(f"request is not valid JSON: {exc}") from exc
            if not isinstance(request, dict):
                raise ProtocolError(
                    f"request must be a JSON object, got {type(request).__name__}"
                )
            request_id = request.get("id")
            tag = request.get("deadline_ms")
            deadline = float(tag) if isinstance(tag, (int, float)) else None
            op = request.get("op")
            if op not in SERVER_OPS:
                raise ProtocolError(
                    f"unknown op {op!r}; supported: {', '.join(SERVER_OPS)}"
                )
            result = await self._dispatch(op, request)
            response: dict[str, Any] = {
                "id": request_id,
                "ok": True,
                "op": op,
                "result": result,
            }
        except ReproError as exc:
            self._count_error(exc)
            response = {
                "id": request_id,
                "ok": False,
                "op": op,
                "error": _error_body(exc),
            }
        elapsed_ms = (time.perf_counter() - start) * 1e3
        response["elapsed_ms"] = round(elapsed_ms, 4)
        if deadline is not None:
            response["deadline_exceeded"] = elapsed_ms > deadline
        self.metrics.inc("serve.requests")
        self.metrics.observe("serve.latency_ms", elapsed_ms)
        self.metrics.observe(f"serve.latency_ms.{op}", elapsed_ms)
        return response

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, op: str, request: dict[str, Any]) -> Any:
        if op == "ping":
            return {"pong": True, "streams": len(self.session)}
        if op == "stats":
            return self.stats()
        key = request.get("key")
        if not isinstance(key, str) or not key:
            raise ProtocolError(f"op {op!r} requires a string 'key'")
        if op == "register":
            return self._op_register(key, request)
        if op == "unregister":
            self.session.unregister(key)
            self._forget_first_fit(key)
            return {"key": key, "streams": len(self.session)}
        if op == "observe":
            return self._op_observe(key, request)
        if op == "drift":
            forecaster = self.session[key]
            return {"key": key, "drift": forecaster.drift()}
        if op == "forecast":
            return await self._op_forecast(key, request)
        if op == "report":
            return await self._op_report(key, request)
        raise ProtocolError(f"unknown op {op!r}")  # pragma: no cover

    def _admit_stream(self, key: str) -> None:
        if key not in self.session and len(self.session) >= self.config.max_streams:
            self.metrics.inc("serve.rejected_register")
            raise AdmissionError(
                f"stream fleet is full ({self.config.max_streams} streams); "
                f"cannot admit {key!r}"
            )

    def _op_register(self, key: str, request: dict[str, Any]) -> dict[str, Any]:
        self._admit_stream(key)
        family = request.get("family")
        nominal = request.get("nominal")
        self.session.register(
            key,
            family=family if isinstance(family, str) else None,
            nominal=float(nominal) if isinstance(nominal, (int, float)) else None,
        )
        return {"key": key, "streams": len(self.session)}

    def _op_observe(self, key: str, request: dict[str, Any]) -> dict[str, Any]:
        points = request.get("points")
        if points is None:
            if "t" not in request or "p" not in request:
                raise ProtocolError(
                    "op 'observe' requires 't' and 'p' (or a 'points' list)"
                )
            points = [[request["t"], request["p"]]]
        if not isinstance(points, list) or not points:
            raise ProtocolError("'points' must be a non-empty list of [t, p] pairs")
        self._admit_stream(key)
        forecaster = None
        for pair in points:
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or not all(isinstance(v, (int, float)) for v in pair)
            ):
                raise ProtocolError(
                    f"'points' entries must be [t, p] number pairs, got {pair!r}"
                )
            self.session.observe(key, float(pair[0]), float(pair[1]))
            forecaster = self.session[key]
        assert forecaster is not None
        return {
            "key": key,
            "n": forecaster.n_observations,
            "pending": forecaster.pending,
            "ready": forecaster.ready,
        }

    async def _op_forecast(self, key: str, request: dict[str, Any]) -> dict[str, Any]:
        forecaster = await self._ensure_first_fit(key)
        horizon = request.get("horizon", self.config.default_horizon)
        if not isinstance(horizon, (int, float)):
            raise ProtocolError(f"'horizon' must be a number, got {horizon!r}")
        n_points = request.get("n_points", 25)
        confidence = request.get("confidence", 0.95)
        forecast = forecaster.forecast(
            float(horizon),
            n_points=int(n_points),
            confidence=float(confidence),
            allow_refit=False,
        )
        return forecast.to_dict()

    async def _op_report(self, key: str, request: dict[str, Any]) -> dict[str, Any]:
        forecaster = await self._ensure_first_fit(key)
        horizon = request.get("horizon")
        # report() would refit inline; pin freshness to the incumbent
        # fit the same way forecast does by reporting through the
        # forecaster only after the first fit exists.
        report = forecaster.report(
            horizon=float(horizon) if isinstance(horizon, (int, float)) else None,
            allow_refit=False,
        )
        return report.to_dict()

    # ------------------------------------------------------------------
    # First-fit admission
    # ------------------------------------------------------------------
    async def _ensure_first_fit(self, key: str) -> OnlineForecaster:
        """The stream's forecaster, cold-fitting it first if needed.

        The solve runs in the loop's default executor under the
        inflight cap; concurrent requests for the same stream share one
        solve. Over-cap demand is rejected (429), and a solve that
        outlives :attr:`ServerConfig.refit_timeout` fails the *request*
        with a 504 while the fit itself keeps cooking.
        """
        forecaster = self.session[key]
        if forecaster.fit is not None:
            return forecaster
        if not forecaster.ready:
            raise ServingError(
                f"stream {key!r} has {forecaster.n_observations} observation(s); "
                f"needs {forecaster.min_points} before the first fit"
            )
        task = self._first_fits.get(key)
        if task is None:
            if self._inflight_refits >= self.config.max_inflight_refits:
                self.metrics.inc("serve.rejected_refit")
                raise AdmissionError(
                    f"all {self.config.max_inflight_refits} first-fit slots "
                    f"are busy; retry stream {key!r} shortly"
                )
            task = asyncio.create_task(self._run_first_fit(key, forecaster))
            self._first_fits[key] = task
            task.add_done_callback(lambda _t: self._forget_first_fit(key))
        try:
            # shield: one waiter timing out must not cancel the shared
            # solve other waiters (and the stream itself) rely on.
            await asyncio.wait_for(
                asyncio.shield(task), timeout=self.config.refit_timeout
            )
        except asyncio.TimeoutError:
            self.metrics.inc("serve.refit_timeouts")
            raise RefitTimeout(
                f"first fit of stream {key!r} exceeded "
                f"{self.config.refit_timeout:.1f}s; it continues in the "
                f"background — retry shortly"
            ) from None
        return forecaster

    def _forget_first_fit(self, key: str) -> None:
        """Drop the stream's in-flight first-fit entry (if any).

        The single mutation funnel for removals from ``_first_fits`` —
        unregister and task-completion callbacks both route through it.
        """
        self._first_fits.pop(key, None)

    async def _run_first_fit(
        self, key: str, forecaster: OnlineForecaster
    ) -> None:
        self._inflight_refits += 1
        try:
            plan = forecaster.refit_plan()
            if plan is None:  # raced with the refit ticker
                return
            loop = asyncio.get_running_loop()
            fit = await loop.run_in_executor(None, forecaster._execute_plan, plan)
            if self.session.forecasters.get(key) is forecaster:
                # allow_reselect=False: adopting on the loop; drift
                # reselection belongs to the remediation loop.
                forecaster.adopt_fit(fit, plan, allow_reselect=False)
                self.metrics.inc("serve.first_fits")
        finally:
            self._inflight_refits -= 1

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _count_error(self, exc: BaseException) -> None:
        self.metrics.inc("serve.errors")
        self.metrics.inc(f"serve.errors.{error_code(exc)}")
        if isinstance(exc, ProtocolError):
            self.metrics.inc("serve.protocol_errors")

    def slo(self) -> dict[str, float]:
        """Current p50/p99 per-request latency (ms), overall and per op."""
        payload: dict[str, float] = {
            "p50_ms": self.metrics.percentile("serve.latency_ms", 50),
            "p99_ms": self.metrics.percentile("serve.latency_ms", 99),
        }
        for op in SERVER_OPS:
            p99 = self.metrics.percentile(f"serve.latency_ms.{op}", 99)
            if p99 > 0.0:
                payload[f"{op}_p50_ms"] = self.metrics.percentile(
                    f"serve.latency_ms.{op}", 50
                )
                payload[f"{op}_p99_ms"] = p99
        return payload

    def stats(self) -> dict[str, Any]:
        """Session totals + server counters + SLO percentiles."""
        counters = self.metrics.snapshot()["counters"]
        return {
            "session": self.session.stats(),
            "server": {
                name: value
                for name, value in sorted(counters.items())
                if name.startswith(("serve.", "remediation."))
            },
            "slo": self.slo(),
        }
