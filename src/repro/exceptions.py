"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to distinguish specific failure
modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "CurveError",
    "FitError",
    "ConvergenceError",
    "DataError",
    "MetricError",
    "ServingError",
    "ShapeError",
    "BenchError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ParameterError(ReproError, ValueError):
    """A model, distribution, or hazard received invalid parameters.

    Raised eagerly at construction time so that invalid parameterizations
    never propagate into numeric code where they would surface as cryptic
    NaN results.
    """


class CurveError(ReproError, ValueError):
    """A :class:`~repro.core.curve.ResilienceCurve` is malformed.

    Examples: non-monotone time stamps, mismatched array lengths, fewer
    than two observations.
    """


class FitError(ReproError, RuntimeError):
    """Model fitting failed for a reason other than non-convergence.

    For example: no feasible starting point could be constructed, or the
    data contain NaN values.
    """


class ConvergenceError(FitError):
    """The optimizer ran but did not converge to an acceptable solution."""


class DataError(ReproError, ValueError):
    """A dataset could not be loaded or failed validation."""


class MetricError(ReproError, ValueError):
    """A resilience metric could not be computed on the given inputs."""


class ShapeError(ReproError, ValueError):
    """A curve-shape classification or generation request is invalid."""


class BenchError(ReproError, ValueError):
    """A benchmark artifact, manifest, or baseline failed validation.

    Raised by :mod:`repro.bench` when a ``BENCH_*.json`` payload is
    missing its provenance block or required metric keys, contains
    non-finite numbers, or when a run/baseline comparison is asked to
    operate on incompatible configurations.
    """


class ServingError(ReproError, RuntimeError):
    """The online forecasting service was used incorrectly.

    Examples: observing a time stamp at or before the last one, asking
    for a forecast before any observations arrived, or registering two
    streams under the same key in a session.

    ``code`` is the wire-protocol status code the JSONL server
    (:mod:`repro.serving.server`) reports for the failure; the typed
    subclasses in :mod:`repro.serving.errors` override it (429 for
    admission rejections, 404 for unknown streams, 504 for refit
    timeouts). The base value 400 is the generic "bad request" bucket.
    """

    code = 400
