"""Thread-safe metrics registry: counters, timers, histograms.

The registry is deliberately tiny — a dict of integer counters plus a
dict of histograms (count/total/min/max and fixed log-spaced duration
buckets). It answers the questions the fit engine's instrumentation
asks of itself ("how many residual evaluations", "how many cache hits",
"how is solve time distributed") without pulling in a metrics
dependency the container does not have.

Timers are histograms observed in seconds::

    registry = MetricsRegistry()
    with registry.timer("fit.seconds"):
        ...                          # observed on exit
    registry.inc("fit.count")
    print(registry.to_table())
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.utils.tables import format_table

__all__ = ["MetricsRegistry", "PERCENTILE_WINDOW", "TIMER_BUCKETS"]

#: Upper edges (seconds) of the histogram buckets; the final implicit
#: bucket is +inf. Log-spaced so both a 0.5 ms cache hit and a 30 s
#: grid land in an informative bin.
TIMER_BUCKETS: tuple[float, ...] = (0.001, 0.01, 0.1, 1.0, 10.0)

#: Observations each histogram retains for exact percentiles. Beyond
#: this the window slides (oldest dropped), so quantiles reflect the
#: most recent observations — the behavior a latency SLO wants.
PERCENTILE_WINDOW = 4096


@dataclass
class _Histogram:
    """Running summary of one observed series."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    buckets: list[int] = field(
        default_factory=lambda: [0] * (len(TIMER_BUCKETS) + 1)
    )
    #: Sliding sample window backing :meth:`percentile`; a ring buffer
    #: of the last :data:`PERCENTILE_WINDOW` observations.
    samples: list[float] = field(default_factory=list)
    _ring_next: int = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if len(self.samples) < PERCENTILE_WINDOW:
            self.samples.append(value)
        else:
            self.samples[self._ring_next] = value
            self._ring_next = (self._ring_next + 1) % PERCENTILE_WINDOW
        for index, edge in enumerate(TIMER_BUCKETS):
            if value <= edge:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0–100) over the sample window.

        Exact (nearest-rank with linear interpolation, numpy
        convention) while fewer than :data:`PERCENTILE_WINDOW`
        observations have arrived; a sliding-window estimate after.
        """
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (max(0.0, min(100.0, q)) / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction

    def as_dict(self) -> dict[str, Any]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total": self.total,
            "mean": mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Named counters and histograms behind one lock.

    All operations are thread-safe; the registry is shared by every
    span a :class:`~repro.observability.tracer.Tracer` records, and the
    thread executor may drive instrumented code from several threads at
    once.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, _Histogram] = {}

    # -- counters -------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add *n* to the counter *name* (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- histograms / timers --------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram *name*."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.observe(float(value))

    def percentile(self, name: str, q: float) -> float:
        """The *q*-th percentile (0–100) of histogram *name*.

        Exact until the histogram's sample window
        (:data:`PERCENTILE_WINDOW` observations) fills, then a
        sliding-window estimate over the most recent observations.
        ``0.0`` for a histogram that was never observed — the serving
        SLO accountant reads p50/p99 through here without caring
        whether traffic arrived yet.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                return 0.0
            return histogram.percentile(q)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager observing its elapsed seconds into *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- snapshots ------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy of every counter and histogram."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in self._histograms.items()
                },
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._histograms)

    def to_table(self) -> str:
        """Aligned text rendering of the registry (summary output)."""
        snap = self.snapshot()
        blocks: list[str] = []
        if snap["counters"]:
            rows = [[name, value] for name, value in sorted(snap["counters"].items())]
            blocks.append(format_table(["Counter", "Value"], rows))
        if snap["histograms"]:
            rows = [
                [
                    name,
                    stats["count"],
                    stats["total"],
                    stats["mean"],
                    stats["min"],
                    stats["max"],
                ]
                for name, stats in sorted(snap["histograms"].items())
            ]
            blocks.append(
                format_table(
                    ["Histogram", "Count", "Total", "Mean", "Min", "Max"],
                    rows,
                    float_digits=6,
                )
            )
        return "\n\n".join(blocks)
