"""Observability for the fit engine: span tracing + metrics.

See :mod:`repro.observability.tracer` for the span model and the
``REPRO_TRACE`` / ``REPRO_TRACE_FILE`` environment switches, and
``docs/observability.md`` for the user guide.
"""

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import (
    NULL_TRACER,
    TRACE_ENV_VAR,
    TRACE_FILE_ENV_VAR,
    Span,
    Tracer,
    TracerLike,
    activate,
    current_tracer,
    deactivate,
    default_tracer,
    disable_tracing,
    enable_tracing,
    resolve_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "TRACE_ENV_VAR",
    "TRACE_FILE_ENV_VAR",
    "Span",
    "Tracer",
    "TracerLike",
    "activate",
    "current_tracer",
    "deactivate",
    "default_tracer",
    "disable_tracing",
    "enable_tracing",
    "resolve_tracer",
]
