"""Span-based tracing for the fit engine.

A :class:`Tracer` records **spans** — named, timed, attributed slices of
work (one model fit, one multi-start solve, one executor dispatch, one
table grid) — into memory and, optionally, a JSON-lines file. Tracing
is **disabled by default**: every instrumentation point resolves to the
module-level :data:`NULL_TRACER` whose methods are no-ops, so the hot
path pays only a guard check (< 2% on the Table III workload — measured
by ``benchmarks/bench_trace_overhead.py``).

Enabling it
-----------
* ``trace=`` kwarg on the fit/experiment APIs: a :class:`Tracer`
  instance, ``True`` (process-global tracer), ``False`` (force off), or
  ``None`` (environment default — the usual default).
* ``REPRO_TRACE=1`` environment variable: traces every instrumented
  call in the process; ``REPRO_TRACE_FILE=path`` additionally streams
  each span as one JSON line (and by itself also implies tracing).
* ``--trace`` / ``--trace-file`` on the ``fit``, ``episodes``,
  ``table`` and ``report`` CLI subcommands, which also print an
  end-of-run summary table.

Span records are JSON objects::

    {"type": "span", "name": "fit", "ts": 1722945600.123,
     "dur_s": 0.84, "id": 7, "parent": 3,
     "attrs": {"family": "wei-exp", "nfev": 1893, "cache_hit": false}}

``parent`` links spans into a per-thread tree (a per-start span's
parent is its fit span; a fit span's parent is the table grid it ran
under). Spans created by worker *processes* are dropped by design — a
:class:`Tracer` unpickles to :data:`NULL_TRACER` — so the process
backend loses per-start attribution but keeps every parent-side span.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from types import TracebackType
from typing import Any, Iterator, Union

import numpy as np

from repro._env import read_env
from repro.observability.metrics import MetricsRegistry
from repro.utils.tables import format_table

__all__ = [
    "TRACE_ENV_VAR",
    "TRACE_FILE_ENV_VAR",
    "Span",
    "Tracer",
    "TracerLike",
    "NULL_TRACER",
    "activate",
    "current_tracer",
    "deactivate",
    "default_tracer",
    "enable_tracing",
    "disable_tracing",
    "resolve_tracer",
]

#: Environment variable enabling the process-default tracer.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Environment variable naming the JSON-lines span file. Setting it
#: implies tracing even when :data:`TRACE_ENV_VAR` is unset.
TRACE_FILE_ENV_VAR = "REPRO_TRACE_FILE"

#: Values of :data:`TRACE_ENV_VAR` that keep tracing disabled.
_OFF_WORDS = frozenset({"", "0", "off", "no", "none", "false", "disabled"})

#: In-memory span cap; a backstop for long-lived traced processes. The
#: JSON-lines stream is unbounded — only the in-memory list is capped,
#: and :attr:`Tracer.dropped_spans` counts what fell off.
DEFAULT_MAX_SPANS = 100_000


def _json_safe(value: Any) -> Any:
    """Attribute values coerced to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.ravel().tolist()]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


class Span:
    """One named, timed slice of work; use as a context manager.

    Attributes set before or during the block (via :meth:`set`) land in
    the emitted record; an exception escaping the block adds an
    ``error`` attribute with the exception type name.
    """

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_t0", "_wall")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self._t0 = 0.0
        self._wall = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.span_id = self._tracer._next_id()
        self.parent_id = self._tracer._stack_push(self.span_id)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._stack_pop()
        self._tracer._emit(
            self.name, self._wall, duration, self.attrs, self.span_id, self.parent_id
        )
        return False


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


class _NullMetrics:
    """Do-nothing stand-in for :class:`MetricsRegistry`."""

    __slots__ = ()

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        yield

    def counter(self, name: str) -> int:
        return 0

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "histograms": {}}

    def to_table(self) -> str:
        return ""


_NULL_SPAN = _NullSpan()


class _NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented code only ever checks :attr:`enabled` and calls
    :meth:`span` / :meth:`record` / ``metrics.inc`` — all free here.
    """

    __slots__ = ()

    enabled = False
    metrics = _NullMetrics()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, seconds: float, **attrs: Any) -> None:
        pass

    @property
    def spans(self) -> list[dict[str, Any]]:
        return []

    def summary(self) -> str:
        return ""

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: The process-wide disabled tracer every no-op path resolves to.
NULL_TRACER = _NullTracer()


def _unpickle_as_null() -> _NullTracer:
    """Tracers degrade to the null tracer across process boundaries."""
    return NULL_TRACER


class Tracer:
    """Collects spans in memory and optionally streams them as JSONL.

    Parameters
    ----------
    path:
        Optional JSON-lines file; every finished span is appended as
        one line (flushed immediately, so a crashed run keeps its
        trace). ``None`` keeps spans in memory only.
    max_spans:
        In-memory retention cap; excess spans are dropped (counted in
        :attr:`dropped_spans`) but still written to *path*.

    Thread-safe: span emission and metrics share internal locks, and
    parent/child nesting is tracked per thread. Pickling a tracer (the
    process executor ships work units through pickle) yields
    :data:`NULL_TRACER` on the far side — child-process spans are
    dropped rather than silently recorded into a dead object.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.max_spans = int(max_spans)
        self.enabled = True
        self.metrics = MetricsRegistry()
        self.dropped_spans = 0
        self._spans: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._id = 0
        self._local = threading.local()
        self._file = None

    # -- span creation --------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; enter it with ``with`` to time the block."""
        return Span(self, name, attrs)

    def record(self, name: str, seconds: float, **attrs: Any) -> None:
        """Emit an already-measured span (e.g. a per-start solve timed
        inside a picklable work unit), parented to the innermost open
        span on this thread."""
        self._emit(
            name,
            time.time() - float(seconds),
            float(seconds),
            attrs,
            self._next_id(),
            self._stack_top(),
        )

    # -- introspection --------------------------------------------------
    @property
    def spans(self) -> list[dict[str, Any]]:
        """Copy of the retained span records (emission order)."""
        with self._lock:
            return list(self._spans)

    def spans_named(self, name: str) -> list[dict[str, Any]]:
        """Retained spans with the given name."""
        return [span for span in self.spans if span["name"] == name]

    def summary(self) -> str:
        """End-of-run text summary: spans aggregated by name, then the
        metrics registry."""
        aggregates: dict[str, list[float]] = {}
        for span in self.spans:
            aggregates.setdefault(span["name"], []).append(span["dur_s"])
        blocks = []
        if aggregates:
            rows = [
                [name, len(durs), sum(durs), sum(durs) / len(durs), max(durs)]
                for name, durs in sorted(
                    aggregates.items(), key=lambda kv: -sum(kv[1])
                )
            ]
            blocks.append(
                format_table(
                    ["Span", "Count", "Total s", "Mean s", "Max s"],
                    rows,
                    title=f"Trace summary — {sum(len(d) for d in aggregates.values())} spans",
                    float_digits=6,
                )
            )
        metrics_table = self.metrics.to_table()
        if metrics_table:
            blocks.append(metrics_table)
        if self.dropped_spans:
            blocks.append(f"({self.dropped_spans} spans dropped from memory)")
        return "\n\n".join(blocks)

    def close(self) -> None:
        """Flush and close the JSON-lines stream (idempotent)."""
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                finally:
                    self._file = None

    # -- internals ------------------------------------------------------
    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _stack_push(self, span_id: int) -> int | None:
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(span_id)
        return parent

    def _stack_pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def _stack_top(self) -> int | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _emit(
        self,
        name: str,
        wall_start: float,
        duration: float,
        attrs: dict[str, Any],
        span_id: int | None,
        parent_id: int | None,
    ) -> None:
        record = {
            "type": "span",
            "name": name,
            "ts": wall_start,
            "dur_s": duration,
            "id": span_id,
            "parent": parent_id,
            "attrs": {str(k): _json_safe(v) for k, v in attrs.items()},
        }
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(record)
            else:
                self.dropped_spans += 1
            if self.path is not None:
                if self._file is None:
                    self._file = open(self.path, "a", encoding="utf-8")
                self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
                self._file.flush()

    def __reduce__(self) -> "tuple[Any, tuple[()]]":
        return (_unpickle_as_null, ())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(path={self.path!r}, spans={len(self._spans)})"


#: Anything accepted wherever tracing is configurable.
TracerLike = Union[bool, Tracer, _NullTracer, None]


# ----------------------------------------------------------------------
# Ambient tracer: contextvar + environment default
# ----------------------------------------------------------------------
_ACTIVE: ContextVar["Tracer | None"] = ContextVar("repro_active_tracer", default=None)

_default_lock = threading.Lock()
_default_tracer: Tracer | None = None
_default_signature: tuple[str, str] | None = None
_forced_tracer: Tracer | None = None


def default_tracer() -> Tracer | None:
    """The environment-configured process tracer, or None.

    A tracer force-enabled by :func:`enable_tracing` wins; otherwise
    ``REPRO_TRACE`` / ``REPRO_TRACE_FILE`` govern. The instance is
    rebuilt when the environment changes between calls (tests
    monkeypatch it).
    """
    global _default_tracer, _default_signature
    if _forced_tracer is not None:
        return _forced_tracer
    signature = (
        read_env(TRACE_ENV_VAR, "") or "",
        read_env(TRACE_FILE_ENV_VAR, "") or "",
    )
    if signature == _default_signature:
        return _default_tracer
    with _default_lock:
        if signature != _default_signature:
            _default_signature = signature
            flag = signature[0].strip().lower()
            path = signature[1].strip()
            if flag not in _OFF_WORDS or path:
                _default_tracer = Tracer(
                    path=os.path.expanduser(path) if path else None
                )
            else:
                _default_tracer = None
    return _default_tracer


def enable_tracing(path: str | os.PathLike | None = None) -> Tracer:
    """Force-enable the process-global tracer (``trace=True`` target).

    Returns the tracer so callers can read spans and the summary.
    Repeated calls reuse the existing forced tracer unless a new *path*
    is given.
    """
    global _forced_tracer
    with _default_lock:
        if _forced_tracer is None or path is not None:
            _forced_tracer = Tracer(path=path)
        return _forced_tracer


def disable_tracing() -> None:
    """Drop the force-enabled process tracer (environment still applies)."""
    global _forced_tracer
    with _default_lock:
        if _forced_tracer is not None:
            _forced_tracer.close()
        _forced_tracer = None


def resolve_tracer(trace: TracerLike) -> "Tracer | _NullTracer":
    """Map a ``trace=`` argument onto a concrete tracer.

    ``None`` → environment default (usually :data:`NULL_TRACER`);
    ``False`` → :data:`NULL_TRACER`; ``True`` → the process-global
    tracer (created on demand); a :class:`Tracer` → itself.
    """
    if trace is None:
        tracer = default_tracer()
        return tracer if tracer is not None else NULL_TRACER
    if trace is False:
        return NULL_TRACER
    if trace is True:
        tracer = default_tracer()
        return tracer if tracer is not None else enable_tracing()
    if isinstance(trace, (Tracer, _NullTracer)):
        return trace
    raise TypeError(
        f"trace must be a bool, None, or Tracer, got {type(trace).__name__}"
    )


def current_tracer() -> "Tracer | _NullTracer":
    """The ambient tracer: the innermost :func:`activate` context on
    this execution context, else the environment default, else
    :data:`NULL_TRACER`. Used by layers (the executor backends) that
    have no ``trace=`` argument of their own."""
    active = _ACTIVE.get()
    if active is not None:
        return active
    tracer = default_tracer()
    return tracer if tracer is not None else NULL_TRACER


@contextmanager
def activate(tracer: "Tracer | _NullTracer") -> Iterator[None]:
    """Make *tracer* the ambient tracer for the duration of the block.

    Activating :data:`NULL_TRACER` is a no-op (it does not mask an
    enabled ambient tracer installed by an outer frame) — use
    :func:`deactivate` to suppress tracing explicitly."""
    if not tracer.enabled:
        yield
        return
    token = _ACTIVE.set(tracer)  # type: ignore[arg-type]
    try:
        yield
    finally:
        _ACTIVE.reset(token)


@contextmanager
def deactivate() -> Iterator[None]:
    """Mask any ambient (or environment-default) tracer for the block.

    The ``trace=False`` escape hatch: instrumented layers below the
    block — including the executor backends, which read the ambient
    tracer — see :data:`NULL_TRACER` regardless of outer activations."""
    token = _ACTIVE.set(NULL_TRACER)  # type: ignore[arg-type]
    try:
        yield
    finally:
        _ACTIVE.reset(token)
