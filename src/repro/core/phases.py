"""Detection of the canonical resilience phases t_h, t_d, t_r.

Figure 1 of the paper divides a resilience curve into the hazard onset
``t_h`` (performance leaves nominal), the trough ``t_d`` (minimum
performance), and the recovery ``t_r`` (performance returns to a steady
state). Empirical curves are noisy, so detection uses a relative
tolerance band around the nominal level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.curve import ResilienceCurve
from repro.exceptions import CurveError

__all__ = ["ResiliencePhases", "detect_phases"]


@dataclass(frozen=True)
class ResiliencePhases:
    """The three phase boundaries of a resilience curve.

    Attributes
    ----------
    hazard_time:
        ``t_h`` — last time performance was at nominal before the first
        sustained drop. Equal to the first sample time when the curve
        starts already degraded.
    trough_time:
        ``t_d`` — time of minimum performance. Equals ``hazard_time``
        when degradation is instantaneous (the paper's ``t_d = t_h``
        case).
    recovery_time:
        ``t_r`` — first time at/after the trough when performance
        re-enters the nominal band, or ``None`` when the curve never
        recovers within the observation window.
    """

    hazard_time: float
    trough_time: float
    recovery_time: float | None

    @property
    def degradation_duration(self) -> float:
        """Time from hazard onset to the trough."""
        return self.trough_time - self.hazard_time

    @property
    def recovery_duration(self) -> float | None:
        """Time from trough to recovery, or ``None`` if unrecovered."""
        if self.recovery_time is None:
            return None
        return self.recovery_time - self.trough_time

    @property
    def total_disruption_duration(self) -> float | None:
        """Time from hazard onset to recovery, or ``None`` if unrecovered."""
        if self.recovery_time is None:
            return None
        return self.recovery_time - self.hazard_time


def detect_phases(
    curve: ResilienceCurve,
    *,
    tolerance: float = 0.002,
) -> ResiliencePhases:
    """Locate ``t_h``, ``t_d``, and ``t_r`` on an empirical curve.

    Parameters
    ----------
    curve:
        The curve to analyze.
    tolerance:
        Relative half-width of the nominal band. Performance below
        ``nominal·(1 − tolerance)`` counts as degraded; performance at or
        above ``nominal·(1 − tolerance)`` after the trough counts as
        recovered.

    Raises
    ------
    CurveError
        If the curve never degrades below the nominal band (there is no
        disruption to phase).
    """
    if tolerance < 0.0:
        raise CurveError(f"tolerance must be non-negative, got {tolerance}")
    times = curve.times
    perf = curve.performance
    threshold = curve.nominal * (1.0 - tolerance) if curve.nominal != 0.0 else -tolerance

    degraded = perf < threshold
    if not bool(np.any(degraded)):
        raise CurveError(
            f"curve {curve.name or '<unnamed>'} never degrades below the nominal band"
        )
    first_degraded = int(np.argmax(degraded))
    # t_h is the last at-nominal sample before the first degraded one.
    hazard_time = float(times[max(first_degraded - 1, 0)])

    trough_index = int(np.argmin(perf))
    trough_time = float(times[trough_index])

    recovery_time: float | None = None
    after = np.nonzero(perf[trough_index:] >= threshold)[0]
    if after.size:
        recovery_time = float(times[trough_index + int(after[0])])
    return ResiliencePhases(hazard_time, trough_time, recovery_time)
