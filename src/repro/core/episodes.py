"""Segmentation of long performance histories into disruption episodes.

The paper models one disruption at a time, but operational telemetry is
a continuous record containing many: a year of grid data with several
storms, decades of payroll data with several recessions. This module
splits such a history into per-disruption episodes — each a
self-contained :class:`~repro.core.curve.ResilienceCurve` starting at
the last nominal sample before a degradation run and ending at recovery
(or at the next episode/window end) — so the paper's single-event
models and metrics apply to each episode separately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.curve import ResilienceCurve
from repro.exceptions import CurveError

__all__ = ["Episode", "split_episodes"]


@dataclass(frozen=True)
class Episode:
    """One disruption episode extracted from a longer history.

    Attributes
    ----------
    curve:
        The episode's sub-curve, with original time stamps.
    start_index, end_index:
        Slice ``[start_index, end_index)`` of the parent curve.
    recovered:
        Whether performance re-entered the nominal band before the
        episode was cut off (by the next episode or the window end).
    """

    curve: ResilienceCurve
    start_index: int
    end_index: int
    recovered: bool

    @property
    def depth(self) -> float:
        """Fractional trough depth of the episode."""
        return self.curve.degradation_depth / self.curve.nominal

    @property
    def duration(self) -> float:
        """Episode time span."""
        return self.curve.duration


def split_episodes(
    history: ResilienceCurve,
    *,
    tolerance: float = 0.01,
    min_depth: float = 0.0,
    min_samples: int = 3,
    merge_gap: int = 2,
) -> list[Episode]:
    """Split *history* into disruption episodes.

    Parameters
    ----------
    history:
        The full performance record. Its ``nominal`` defines the
        at-nominal band.
    tolerance:
        Relative half-width of the nominal band: performance below
        ``nominal·(1 − tolerance)`` counts as degraded.
    min_depth:
        Episodes whose relative depth never exceeds this are discarded
        (filters sensor noise blips).
    min_samples:
        Minimum number of samples for an episode to be kept.
    merge_gap:
        Degraded runs separated by at most this many at-nominal samples
        are merged into one episode (brief touch-and-go recoveries, the
        W case, stay together).

    Returns
    -------
    list of Episode
        In time order; empty when the history never degrades.

    Raises
    ------
    CurveError
        On invalid arguments.
    """
    if tolerance < 0.0:
        raise CurveError(f"tolerance must be >= 0, got {tolerance}")
    if min_samples < 2:
        raise CurveError(f"min_samples must be >= 2, got {min_samples}")
    if merge_gap < 0:
        raise CurveError(f"merge_gap must be >= 0, got {merge_gap}")

    perf = history.performance
    nominal = history.nominal
    threshold = nominal * (1.0 - tolerance) if nominal != 0.0 else -tolerance
    degraded = perf < threshold
    if not bool(np.any(degraded)):
        return []

    # Maximal degraded runs as (start, end) index pairs, end exclusive.
    padded = np.concatenate(([False], degraded, [False]))
    edges = np.diff(padded.astype(np.int8))
    run_starts = np.nonzero(edges == 1)[0]
    run_ends = np.nonzero(edges == -1)[0]

    # Merge runs separated by small at-nominal gaps.
    merged: list[tuple[int, int]] = []
    for start, end in zip(run_starts, run_ends):
        if merged and start - merged[-1][1] <= merge_gap:
            merged[-1] = (merged[-1][0], int(end))
        else:
            merged.append((int(start), int(end)))

    episodes: list[Episode] = []
    n = len(history)
    for index, (start, end) in enumerate(merged):
        # Extend left to the last at-nominal sample (the t_h anchor).
        left = max(start - 1, 0)
        # Extend right through the recovery sample; cut at the next
        # episode's left anchor or the window end.
        next_start = merged[index + 1][0] - 1 if index + 1 < len(merged) else n
        right = min(end + 1, next_start, n)
        recovered = end < n and bool(perf[min(end, n - 1)] >= threshold)
        if right - left < min_samples:
            continue
        sub = ResilienceCurve(
            history.times[left:right],
            perf[left:right],
            nominal=nominal,
            name=f"{history.name or 'history'}#{len(episodes)}",
            metadata=history.metadata,
        )
        if nominal != 0.0 and sub.degradation_depth / nominal < min_depth:
            continue
        episodes.append(
            Episode(
                curve=sub,
                start_index=left,
                end_index=right,
                recovered=recovered,
            )
        )
    return episodes
