"""Core resilience-curve containers, phase detection, and shape taxonomy."""

from repro.core.curve import ResilienceCurve
from repro.core.episodes import Episode, split_episodes
from repro.core.events import DisruptionEvent
from repro.core.phases import ResiliencePhases, detect_phases
from repro.core.shapes import CurveShape, classify_shape

__all__ = [
    "ResilienceCurve",
    "Episode",
    "split_episodes",
    "DisruptionEvent",
    "ResiliencePhases",
    "detect_phases",
    "CurveShape",
    "classify_shape",
]
