"""Recession/resilience curve shape taxonomy (V, U, W, L, J, K).

Economists label recession curves with letters (Section V of the
paper). The classifier here encodes the descriptions the paper gives:

* **V** — sharp but brief degradation, similarly strong recovery.
* **U** — slower deterioration and recovery, flat-bottomed.
* **W** — two successive degradation/recovery episodes.
* **L** — sharp decline, long period of under-performance.
* **J** — slow recovery that eventually exceeds the pre-event trend.
* **K** — long sharp drop with divergent recovery paths; on a single
  aggregate curve this manifests as a sharp drop with a partial,
  kinked recovery.

The classifier is a documented heuristic, not a learned model: it
exists so tests and ablations can tie model adequacy (the paper's
headline negative result) to the shape class of the input curve.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.curve import ResilienceCurve
from repro.exceptions import ShapeError

__all__ = ["CurveShape", "classify_shape", "count_significant_dips"]


class CurveShape(enum.Enum):
    """Letter taxonomy of resilience curves."""

    V = "V"
    U = "U"
    W = "W"
    L = "L"
    J = "J"
    K = "K"
    FLAT = "flat"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge padding."""
    if window <= 1 or values.size < window:
        return values.astype(np.float64)
    kernel = np.ones(window) / window
    padded = np.pad(values.astype(np.float64), window // 2, mode="edge")
    smoothed = np.convolve(padded, kernel, mode="same")
    start = window // 2
    return smoothed[start : start + values.size]


def count_significant_dips(
    curve: ResilienceCurve,
    *,
    min_depth_fraction: float = 0.2,
    smoothing_window: int = 3,
) -> int:
    """Number of distinct local minima deeper than a fraction of the
    curve's total degradation depth.

    A "dip" is a maximal run below the significance threshold; two dips
    separated by a rebound above the threshold count separately, which
    is what distinguishes W-shaped curves from single-trough shapes.
    """
    if not 0.0 < min_depth_fraction <= 1.0:
        raise ShapeError(
            f"min_depth_fraction must lie in (0, 1], got {min_depth_fraction}"
        )
    perf = _smooth(curve.performance, smoothing_window)
    nominal = curve.nominal
    depth = nominal - float(perf.min())
    if depth <= 0.0:
        return 0
    threshold = nominal - min_depth_fraction * depth
    below = perf < threshold
    # Count the rising edges of the boolean mask.
    edges = np.diff(below.astype(np.int8))
    dips = int(np.sum(edges == 1)) + (1 if below[0] else 0)
    return dips


def classify_shape(
    curve: ResilienceCurve,
    *,
    recovery_tolerance: float = 0.005,
    sharp_drop_fraction: float = 0.15,
    flat_depth: float = 1e-3,
) -> CurveShape:
    """Classify *curve* into the letter taxonomy.

    Parameters
    ----------
    curve:
        Curve to classify; expected to start near its nominal level.
    recovery_tolerance:
        Relative band around nominal counting as "recovered".
    sharp_drop_fraction:
        A trough reached within this fraction of the observation window
        counts as a "sharp" drop (V/L/K candidates).
    flat_depth:
        Relative degradation depth below which the curve is FLAT.

    Notes
    -----
    K cannot be identified from a single aggregate curve (it describes
    divergent sub-population paths); following the paper, sharp-drop
    curves with a partial kinked recovery are labelled L here, and the
    2020-21 dataset is treated as L/K jointly in experiments.
    """
    nominal = curve.nominal
    if nominal == 0.0:
        raise ShapeError("cannot classify a curve with zero nominal performance")
    normalized = curve.normalized()
    perf = normalized.performance
    times = normalized.times

    depth = 1.0 - float(perf.min())
    if depth < flat_depth:
        return CurveShape.FLAT

    dips = count_significant_dips(normalized)
    if dips >= 2:
        return CurveShape.W

    trough_index = int(np.argmin(perf))
    window = float(times[-1] - times[0])
    drop_duration = float(times[trough_index] - times[0])
    sharp_drop = drop_duration <= sharp_drop_fraction * window

    recovered_mask = perf[trough_index:] >= 1.0 - recovery_tolerance
    recovered = bool(np.any(recovered_mask))
    final = float(perf[-1])

    if recovered:
        recovery_index = trough_index + int(np.argmax(recovered_mask))
        recovery_duration = float(times[recovery_index] - times[trough_index])
        overshoot = final > 1.0 + 5.0 * recovery_tolerance
        slow_recovery = recovery_duration > 2.0 * max(drop_duration, 1e-12)
        if overshoot and slow_recovery and not sharp_drop:
            return CurveShape.J
        # V vs U: a V dips and rebounds without lingering, a U has a
        # flat bottom and/or a rebound much slower than the drop.
        deep = perf < 1.0 - 0.5 * depth
        deep_fraction = float(np.count_nonzero(deep)) / perf.size
        symmetric_rebound = recovery_duration <= 1.5 * max(drop_duration, 1e-12)
        if deep_fraction <= 0.35 and symmetric_rebound:
            return CurveShape.V
        return CurveShape.U

    # Unrecovered within the window.
    if sharp_drop:
        return CurveShape.L
    # Slow decline that never recovers: closest letter is U (truncated)
    # unless performance is still falling at the end, which reads as L.
    still_falling = perf[-1] <= float(perf[max(len(perf) - 5, 0) :].min()) + 1e-12
    return CurveShape.L if still_falling else CurveShape.U
