"""The :class:`ResilienceCurve` container.

A resilience curve is a sampled record of system performance around a
disruptive event: time stamps, performance values, and the nominal
(pre-disruption) performance level. Everything downstream — fitting,
metrics, validation — consumes this type.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.exceptions import CurveError
from repro.utils.integrate import trapezoid_integral
from repro.utils.numerics import as_float_array

__all__ = ["ResilienceCurve"]


class ResilienceCurve:
    """Sampled performance of a system around a disruption.

    Parameters
    ----------
    times:
        Strictly increasing sample times (e.g. months after the
        employment peak).
    performance:
        Performance at each time. For the recession datasets this is the
        payroll-employment index normalized to 1.0 at the peak.
    nominal:
        Nominal performance level ``P(t_h)`` before the disruption.
        Defaults to the first performance sample.
    name:
        Human-readable label (e.g. ``"1990-93"``).
    metadata:
        Free-form provenance mapping, copied defensively.
    """

    __slots__ = ("_times", "_performance", "_nominal", "name", "_metadata")

    def __init__(
        self,
        times: ArrayLike,
        performance: ArrayLike,
        *,
        nominal: float | None = None,
        name: str = "",
        metadata: Mapping[str, Any] | None = None,
    ) -> None:
        t = as_float_array(times, "times")
        p = as_float_array(performance, "performance")
        if t.size != p.size:
            raise CurveError(
                f"times and performance length mismatch: {t.size} vs {p.size}"
            )
        if t.size < 2:
            raise CurveError("a resilience curve needs at least two samples")
        if not np.all(np.isfinite(t)) or not np.all(np.isfinite(p)):
            raise CurveError("times and performance must be finite")
        if np.any(np.diff(t) <= 0):
            raise CurveError("times must be strictly increasing")
        self._times = t
        self._times.setflags(write=False)
        self._performance = p
        self._performance.setflags(write=False)
        if nominal is None:
            nominal = float(p[0])
        if not np.isfinite(nominal):
            raise CurveError(f"nominal must be finite, got {nominal}")
        self._nominal = float(nominal)
        self.name = name
        self._metadata = dict(metadata) if metadata else {}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def times(self) -> FloatArray:
        """Read-only array of sample times."""
        return self._times

    @property
    def performance(self) -> FloatArray:
        """Read-only array of performance samples."""
        return self._performance

    @property
    def nominal(self) -> float:
        """Nominal (pre-disruption) performance level."""
        return self._nominal

    @property
    def metadata(self) -> dict[str, Any]:
        """Copy of the provenance metadata."""
        return dict(self._metadata)

    def __len__(self) -> int:
        return int(self._times.size)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"ResilienceCurve({label} n={len(self)}, "
            f"t=[{self._times[0]:.6g}, {self._times[-1]:.6g}], "
            f"nominal={self._nominal:.6g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResilienceCurve):
            return NotImplemented
        return (
            np.array_equal(self._times, other._times)
            and np.array_equal(self._performance, other._performance)
            and self._nominal == other._nominal
        )

    __hash__ = None  # type: ignore[assignment]  # mutable-ish container semantics

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Time span covered by the samples."""
        return float(self._times[-1] - self._times[0])

    @property
    def min_performance(self) -> float:
        """Lowest observed performance."""
        return float(self._performance.min())

    @property
    def trough_time(self) -> float:
        """Time of the lowest observed performance (first if tied)."""
        return float(self._times[int(np.argmin(self._performance))])

    @property
    def degradation_depth(self) -> float:
        """Nominal minus minimum performance (≥ 0 for a real disruption)."""
        return self._nominal - self.min_performance

    @property
    def final_performance(self) -> float:
        """Performance at the last sample."""
        return float(self._performance[-1])

    def has_recovered(self, tolerance: float = 0.0) -> bool:
        """Whether performance returns to within *tolerance* of nominal
        at any time after the trough."""
        trough_index = int(np.argmin(self._performance))
        after = self._performance[trough_index:]
        return bool(np.any(after >= self._nominal - tolerance))

    # ------------------------------------------------------------------
    # Interpolation and integration
    # ------------------------------------------------------------------
    def performance_at(self, times: ArrayLike) -> FloatArray:
        """Linearly interpolated performance at arbitrary *times*.

        Extrapolation is clamped to the first/last observed values.
        """
        query = as_float_array(times, "times")
        return np.interp(query, self._times, self._performance)

    def area(self, lower: float | None = None, upper: float | None = None) -> float:
        """Trapezoid integral of performance over ``[lower, upper]``.

        Defaults to the full observation window. Endpoints inside the
        window are handled by interpolating boundary values.
        """
        lo = float(self._times[0]) if lower is None else float(lower)
        hi = float(self._times[-1]) if upper is None else float(upper)
        if lo > hi:
            raise CurveError(f"integration bounds reversed: [{lo}, {hi}]")
        if lo < self._times[0] - 1e-12 or hi > self._times[-1] + 1e-12:
            raise CurveError(
                f"integration bounds [{lo}, {hi}] outside observation window "
                f"[{self._times[0]}, {self._times[-1]}]"
            )
        if lo == hi:
            return 0.0
        inside = (self._times > lo) & (self._times < hi)
        grid = np.concatenate(([lo], self._times[inside], [hi]))
        values = self.performance_at(grid)
        return trapezoid_integral(grid, values)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def normalized(self) -> "ResilienceCurve":
        """Curve rescaled so nominal performance is 1.0.

        Raises
        ------
        CurveError
            If the nominal level is zero (cannot normalize).
        """
        if self._nominal == 0.0:
            raise CurveError("cannot normalize a curve with zero nominal performance")
        return ResilienceCurve(
            self._times,
            self._performance / self._nominal,
            nominal=1.0,
            name=self.name,
            metadata=self._metadata,
        )

    def shifted(self, offset: float) -> "ResilienceCurve":
        """Curve with *offset* added to every time stamp."""
        return ResilienceCurve(
            self._times + offset,
            self._performance,
            nominal=self._nominal,
            name=self.name,
            metadata=self._metadata,
        )

    def window(self, lower: float, upper: float) -> "ResilienceCurve":
        """Sub-curve containing samples with ``lower <= t <= upper``."""
        mask = (self._times >= lower) & (self._times <= upper)
        if int(mask.sum()) < 2:
            raise CurveError(
                f"window [{lower}, {upper}] contains fewer than two samples"
            )
        return ResilienceCurve(
            self._times[mask],
            self._performance[mask],
            nominal=self._nominal,
            name=self.name,
            metadata=self._metadata,
        )

    def head(self, count: int) -> "ResilienceCurve":
        """Sub-curve of the first *count* samples."""
        if count < 2:
            raise CurveError("head() needs at least two samples")
        if count > len(self):
            raise CurveError(f"head({count}) exceeds curve length {len(self)}")
        return ResilienceCurve(
            self._times[:count],
            self._performance[:count],
            nominal=self._nominal,
            name=self.name,
            metadata=self._metadata,
        )

    def train_test_split(self, train_fraction: float) -> tuple["ResilienceCurve", "ResilienceCurve"]:
        """Split into a fitting prefix and held-out suffix, as the paper
        does with "the first 90% of each data set".

        The suffix curve keeps the original time stamps so predictive
        metrics integrate over the true held-out window.
        """
        if not 0.0 < train_fraction < 1.0:
            raise CurveError(f"train_fraction must lie in (0, 1), got {train_fraction}")
        n_train = int(round(train_fraction * len(self)))
        n_train = min(max(n_train, 2), len(self) - 1)
        train = self.head(n_train)
        test = ResilienceCurve(
            self._times[n_train:],
            self._performance[n_train:],
            nominal=self._nominal,
            name=self.name,
            metadata=self._metadata,
        ) if len(self) - n_train >= 2 else ResilienceCurve(
            self._times[n_train - 1 :],
            self._performance[n_train - 1 :],
            nominal=self._nominal,
            name=self.name,
            metadata=self._metadata,
        )
        return train, test

    def resampled(self, new_times: ArrayLike) -> "ResilienceCurve":
        """Curve re-sampled by linear interpolation onto *new_times*."""
        t = as_float_array(new_times, "new_times")
        return ResilienceCurve(
            t,
            self.performance_at(t),
            nominal=self._nominal,
            name=self.name,
            metadata=self._metadata,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation (JSON-serializable)."""
        return {
            "name": self.name,
            "times": self._times.tolist(),
            "performance": self._performance.tolist(),
            "nominal": self._nominal,
            "metadata": dict(self._metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResilienceCurve":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                payload["times"],
                payload["performance"],
                nominal=payload.get("nominal"),
                name=payload.get("name", ""),
                metadata=payload.get("metadata"),
            )
        except KeyError as exc:
            raise CurveError(f"curve payload missing key: {exc}") from None
