"""Disruption event descriptors.

Events carry the provenance of a resilience curve (what happened, when,
how severe) and parameterize the synthetic-curve generators and the
Monte-Carlo shock simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ParameterError

__all__ = ["DisruptionEvent"]


@dataclass(frozen=True)
class DisruptionEvent:
    """A disruptive event acting on a system.

    Attributes
    ----------
    name:
        Short label, e.g. ``"2020 COVID-19 recession"``.
    onset:
        Time at which the event begins (``t_h`` in the paper).
    magnitude:
        Fractional performance loss at the trough, in ``(0, 1]``.
        ``0.14`` means performance bottoms out 14% below nominal.
    degradation_duration:
        Time from onset to the trough (0 means instantaneous drop,
        the paper's ``t_d = t_h`` case).
    recovery_duration:
        Time from trough back to steady state; ``None`` when the system
        does not recover within the horizon of interest.
    metadata:
        Free-form provenance.
    """

    name: str
    onset: float
    magnitude: float
    degradation_duration: float = 0.0
    recovery_duration: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.magnitude <= 1.0:
            raise ParameterError(
                f"magnitude must lie in (0, 1], got {self.magnitude}"
            )
        if self.degradation_duration < 0.0:
            raise ParameterError(
                f"degradation_duration must be >= 0, got {self.degradation_duration}"
            )
        if self.recovery_duration is not None and self.recovery_duration <= 0.0:
            raise ParameterError(
                f"recovery_duration must be positive when given, "
                f"got {self.recovery_duration}"
            )

    @property
    def trough_time(self) -> float:
        """Time at which performance reaches its minimum."""
        return self.onset + self.degradation_duration

    @property
    def end_time(self) -> float | None:
        """Time of full recovery, or ``None`` when unrecovered."""
        if self.recovery_duration is None:
            return None
        return self.trough_time + self.recovery_duration
