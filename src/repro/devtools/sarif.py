"""SARIF 2.1.0 renderer for lint results.

SARIF (Static Analysis Results Interchange Format) is the exchange
format code-scanning UIs ingest; emitting it lets CI upload `repro
lint` findings as a reviewable artifact without any custom tooling.
One run object, one result per finding; baselined findings are
included with ``baselineState: "unchanged"`` so the artifact reflects
the full picture while gating stays with the text/JSON exit code.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.devtools.findings import Finding

__all__ = ["SARIF_VERSION", "render_sarif"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint import LintResult

SARIF_VERSION = "2.1.0"

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule: type) -> dict[str, Any]:
    return {
        "id": rule.RULE_ID,  # type: ignore[attr-defined]
        "name": rule.NAME,  # type: ignore[attr-defined]
        "shortDescription": {
            "text": rule.DESCRIPTION  # type: ignore[attr-defined]
        },
    }


def _result(finding: Finding, *, baselined: bool) -> dict[str, Any]:
    message = finding.message
    if finding.hint:
        message = f"{message} ({finding.hint})"
    result: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "note" if baselined else "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
    }
    if baselined:
        result["baselineState"] = "unchanged"
    return result


def render_sarif(result: "LintResult") -> str:
    """The full SARIF 2.1.0 log for one lint run (stable output)."""
    from repro.devtools.graph_rules import GRAPH_RULES
    from repro.devtools.rules import ALL_RULES

    rules = [_rule_descriptor(rule) for rule in (*ALL_RULES, *GRAPH_RULES)]
    known = {descriptor["id"] for descriptor in rules}
    # Synthesized rule ids (E1 parse errors, W1 unused suppressions)
    # only appear in the driver when a finding references them.
    extra = sorted(
        {
            finding.rule
            for finding in (*result.new, *result.baselined)
            if finding.rule not in known
        }
    )
    rules.extend(
        {"id": rule_id, "name": rule_id, "shortDescription": {"text": rule_id}}
        for rule_id in extra
    )
    log = {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": [
                    *(_result(f, baselined=False) for f in result.new),
                    *(_result(f, baselined=True) for f in result.baselined),
                ],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
