"""The committed lint baseline — grandfathered findings.

The baseline lets the linter gate *new* violations while tolerating a
reviewed, committed set of old ones. It is a JSON file (by default
``lint-baseline.json`` at the project root) whose entries identify
findings by ``(rule, path, message)`` — no line numbers, so unrelated
edits do not invalidate it — with a ``count`` for repeated identical
findings in one file.

Workflow:

* ``repro lint`` — findings present in the baseline are reported as
  *baselined* and do not fail the run; anything new does.
* ``repro lint --update-baseline`` — regenerates the file from the
  current findings. The rendering is canonical (sorted entries, sorted
  keys, two-space indent, trailing newline), so regenerating with an
  unchanged tree is byte-identical — CI can diff it.
* Fixing a grandfathered violation leaves a *stale* baseline entry;
  the linter reports how many entries went unused so they can be
  cleaned up with another ``--update-baseline``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.findings import Finding

__all__ = [
    "BASELINE_FILENAME",
    "apply_baseline",
    "load_baseline",
    "render_baseline",
]

#: Default baseline file name, looked up at the project root.
BASELINE_FILENAME = "lint-baseline.json"

_Key = tuple[str, str, str]


def load_baseline(path: Path) -> Counter[_Key]:
    """Baseline entries as a multiset of ``(rule, path, message)`` keys.

    A missing file is an empty baseline.
    """
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = payload.get("findings", [])
    counter: Counter[_Key] = Counter()
    for entry in entries:
        key = (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
        counter[key] += int(entry.get("count", 1))
    return counter


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter[_Key]
) -> tuple[list[Finding], list[Finding], int]:
    """Split findings into (new, baselined) and count stale entries.

    Each baseline entry absorbs at most ``count`` matching findings;
    the third return value is the number of baseline entries that
    matched nothing (candidates for cleanup).
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = sum(count for count in remaining.values() if count > 0)
    return new, grandfathered, stale


def render_baseline(findings: Iterable[Finding]) -> str:
    """Canonical JSON text for the baseline file.

    Deterministic byte-for-byte for a given finding multiset: entries
    are aggregated by key, sorted, and serialized with sorted keys and
    a trailing newline.
    """
    counts: Counter[_Key] = Counter(f.baseline_key for f in findings)
    entries = [
        {"rule": rule, "path": path, "message": message, "count": count}
        for (rule, path, message), count in sorted(counts.items())
    ]
    payload = {
        "version": 1,
        "note": (
            "Grandfathered repro-lint findings. Regenerate with "
            "`repro lint --update-baseline`; do not edit by hand."
        ),
        "findings": entries,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
