"""The four interprocedural rules over the project call graph.

========  ==================  ====================================================
Rule id   Name                Invariant enforced
========  ==================  ====================================================
``R7``    async-purity        No registered blocking sink (scipy solves, fit
                              entry points, store I/O, ``time.sleep``, ``open``,
                              ``subprocess``) is guard-reachable from an
                              ``async def`` in the serving layer except through
                              the ``run_in_executor`` / worker-pool funnel.
``R8``    lock-discipline     No ``await`` while a synchronous lock is held; no
                              mutation of registered shared state outside its
                              designated funnel methods.
``R9``    numeric-hygiene     No unguarded ``/``, ``np.log``, ``np.sqrt``,
                              ``np.power`` in registered kernel modules —
                              wrap in ``np.errstate``, clip/guard the operand,
                              or suppress with a stated reason.
``R10``   error-surface       Every subclass of the registered error base maps
                              to a wire code, every protocol op has a dispatch
                              arm, and the protocol handler catches-and-maps
                              the error hierarchy.
========  ==================  ====================================================

Unlike the per-module rules in :mod:`repro.devtools.rules`, these run
once per lint invocation via ``check_project(graph, config)`` over the
:class:`~repro.devtools.callgraph.CallGraph` of every linted module.
Findings flow through the same suppression/baseline machinery.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.devtools.callgraph import CallGraph, FunctionInfo
from repro.devtools.findings import Finding
from repro.devtools.rules import LintConfig, ModuleSource, ProtocolSpec, _dotted_name

__all__ = [
    "AsyncPurityRule",
    "ErrorSurfaceRule",
    "GRAPH_RULES",
    "LockDisciplineRule",
    "NumericHygieneRule",
]


# ----------------------------------------------------------------------
# R7 — async purity
# ----------------------------------------------------------------------
class AsyncPurityRule:
    """Blocking sinks stay off the event loop."""

    RULE_ID = "R7"
    NAME = "async-purity"
    DESCRIPTION = (
        "no registered blocking call may be reachable from an async "
        "def in the serving layer except through run_in_executor; "
        "the event loop never solves"
    )

    def check_project(
        self, graph: CallGraph, config: LintConfig
    ) -> list[Finding]:
        if not config.blocking_sinks:
            return []
        findings: list[Finding] = []
        for fn in graph.functions.values():
            if not fn.is_async:
                continue
            if not any(fn.relpath.startswith(p) for p in config.async_prefixes):
                continue
            path = graph.blocking_path(fn.qualname, config.blocking_sinks)
            if path is None:
                continue
            findings.append(
                Finding(
                    path=fn.relpath,
                    line=path.lineno,
                    rule=self.RULE_ID,
                    message=(
                        f"blocking sink reachable from async "
                        f"{fn.shortname}: {path.render()}"
                    ),
                    hint=(
                        "move the blocking call behind "
                        "loop.run_in_executor, or prune the path with a "
                        "guard parameter (allow_refit=False)"
                    ),
                )
            )
        return sorted(findings)


# ----------------------------------------------------------------------
# R8 — lock/await discipline and shared-state funnels
# ----------------------------------------------------------------------
class LockDisciplineRule:
    """No await under a sync lock; shared state mutates via funnels."""

    RULE_ID = "R8"
    NAME = "lock-discipline"
    DESCRIPTION = (
        "an await while holding a synchronous lock stalls every other "
        "coroutine; registered shared state may only be mutated inside "
        "its designated funnel methods"
    )

    _MUTATOR_METHODS = frozenset(
        {"append", "add", "clear", "extend", "insert", "pop", "popitem",
         "remove", "setdefault", "update", "discard"}
    )

    def check_project(
        self, graph: CallGraph, config: LintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for fn in graph.functions.values():
            if fn.is_async:
                findings.extend(self._check_lock_await(fn))
            findings.extend(self._check_shared_state(fn, config))
        return sorted(findings)

    def _check_lock_await(self, fn: FunctionInfo) -> list[Finding]:
        findings: list[Finding] = []

        def lock_name(expr: ast.expr) -> str | None:
            """The held lock's dotted name, when *expr* looks like one."""
            target = expr.func if isinstance(expr, ast.Call) else expr
            name = _dotted_name(target)
            if name is not None and "lock" in name.split(".")[-1].lower():
                return name
            return None

        def walk(node: ast.AST, held: str | None) -> None:
            if isinstance(node, ast.With):
                lock = held
                for item in node.items:
                    lock = lock_name(item.context_expr) or lock
                for child in node.body:
                    walk(child, lock)
                return
            if isinstance(node, ast.Await) and held is not None:
                findings.append(
                    Finding(
                        path=fn.relpath,
                        line=node.lineno,
                        rule=self.RULE_ID,
                        message=(
                            f"await inside sync-lock block ({held}) in "
                            f"{fn.shortname}"
                        ),
                        hint=(
                            "use asyncio.Lock (async with) or release the "
                            "lock before awaiting"
                        ),
                    )
                )
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                node is not fn.node
            ):
                # A nested def does not execute while the lock is held.
                return
            for child in ast.iter_child_nodes(node):
                walk(child, held)

        walk(fn.node, None)
        return findings

    def _check_shared_state(
        self, fn: FunctionInfo, config: LintConfig
    ) -> list[Finding]:
        specs = {spec.attr: spec for spec in config.shared_state}
        if not specs or fn.name == "__init__":
            return []
        findings: list[Finding] = []
        for node in ast.walk(fn.node):
            attr: str | None = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = attr or self._state_attr(target, specs)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = attr or self._state_attr(target, specs)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in self._MUTATOR_METHODS:
                    base = node.func.value
                    if isinstance(base, ast.Attribute) and base.attr in specs:
                        attr = base.attr
            if attr is None:
                continue
            spec = specs[attr]
            if fn.name in spec.allowed:
                continue
            funnels = ", ".join(sorted(spec.allowed)) or "__init__"
            findings.append(
                Finding(
                    path=fn.relpath,
                    line=node.lineno,
                    rule=self.RULE_ID,
                    message=(
                        f"shared state {attr} mutated in {fn.shortname} "
                        f"outside its funnel(s) {funnels}"
                    ),
                    hint="route the mutation through the funnel method",
                )
            )
        return findings

    @staticmethod
    def _state_attr(target: ast.expr, specs: dict[str, object]) -> str | None:
        # self._attr = …  /  self._attr[k] = …  /  del self._attr[k]
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in specs:
            return node.attr
        return None


# ----------------------------------------------------------------------
# R9 — numeric hygiene in kernel modules
# ----------------------------------------------------------------------
class NumericHygieneRule:
    """Division/log/sqrt/power in kernels must be guarded."""

    RULE_ID = "R9"
    NAME = "numeric-hygiene"
    DESCRIPTION = (
        "unguarded /, np.log, np.sqrt, np.power in kernel modules emit "
        "silent NaN/Inf that corrupt downstream tables; wrap in "
        "np.errstate, clip/guard the operand, or suppress with a reason"
    )

    _RISKY_FUNCS = frozenset({"log", "log2", "log10", "sqrt", "power"})
    #: Call heads whose result is a safe operand (clipped/positive).
    _SAFE_FUNCS = frozenset(
        {"clip", "maximum", "max", "exp", "abs", "absolute", "hypot", "len",
         "where"}
    )
    #: Nonzero-preserving wrappers, safe iff their first argument is
    #: (``sqrt``/``square`` are risky targets but transparent wrappers).
    _TRANSPARENT_CALLS = frozenset(
        {"float", "asarray", "array", "sqrt", "square"}
    )
    #: Nonzero-preserving methods, safe iff their *receiver* is.
    _TRANSPARENT_METHODS = frozenset(
        {"astype", "copy", "reshape", "ravel", "sum"}
    )
    #: Attribute tails that are positive by definition (``np.finfo``
    #: fields and the math-module constants).
    _POSITIVE_ATTRS = frozenset({"eps", "tiny", "smallest_normal", "pi", "e"})
    #: Constructor validators whose result is guaranteed positive.
    _VALIDATORS = frozenset({"_require_positive", "require_positive"})

    def check_project(
        self, graph: CallGraph, config: LintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for module in graph.modules:
            if not any(
                module.relpath.startswith(p) for p in config.kernel_prefixes
            ):
                continue
            findings.extend(self._check_module(module))
        return sorted(findings)

    def _check_module(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        base = self._module_constants(module.tree)

        def scan(node: ast.AST, guarded: bool, ctx: frozenset[str]) -> None:
            if isinstance(node, ast.ClassDef):
                inner = ctx | self._validated_attrs(node)
                for child in node.body:
                    scan(child, guarded, inner)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = ctx | self._guarded_texts(node)
                inner |= self._safe_assignments(node, inner)
                for child in node.body:
                    scan(child, guarded, inner)
                return
            if isinstance(node, ast.With):
                held = guarded or any(
                    self._is_errstate(item.context_expr) for item in node.items
                )
                for item in node.items:
                    scan(item.context_expr, guarded, ctx)
                for child in node.body:
                    scan(child, held, ctx)
                return
            if not guarded:
                problem = self._violation(node, ctx)
                if problem is not None:
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=node.lineno,
                            rule=self.RULE_ID,
                            message=problem,
                            hint=(
                                "wrap the kernel block in np.errstate(...) "
                                "with an explicit penalty/clip guard, or "
                                "suppress with a stated reason"
                            ),
                        )
                    )
            for child in ast.iter_child_nodes(node):
                scan(child, guarded, ctx)

        scan(module.tree, False, base)
        unique: dict[tuple[int, str], Finding] = {
            (f.line, f.message): f for f in findings
        }
        return list(unique.values())

    def _module_constants(self, tree: ast.Module) -> frozenset[str]:
        """Module-level names bound to a safe (nonzero) expression.

        Iterated to a fixpoint so ``_SQRT2 = math.sqrt(2.0)`` and
        constants derived from earlier constants both register.
        """
        names: set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in tree.body:
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id in names:
                        continue
                    if self._safe_expr(node.value, frozenset(names)):
                        names.add(target.id)
                        changed = True
        return frozenset(names)

    def _validated_attrs(self, cls: ast.ClassDef) -> frozenset[str]:
        """``self.x`` texts the constructor validates as positive.

        ``self.theta = self._require_positive("theta", theta)`` makes
        every later ``/ self.theta`` in the class safe by construction.
        """
        texts: set[str] = set()
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name not in {"__init__", "__post_init__"}:
                continue
            for node in ast.walk(item):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                dotted = _dotted_name(node.value.func) or ""
                if dotted.split(".")[-1] not in self._VALIDATORS:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        texts.add(f"self.{target.attr}")
        return frozenset(texts)

    @staticmethod
    def _guarded_texts(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> frozenset[str]:
        """Expression texts cleared by an explicit raise/return guard.

        ``if denom == 0.0: raise MetricError(...)`` (or an early
        ``return``) is the idiomatic hand-written zero guard; the
        compared expressions are safe in the rest of the function.
        """
        texts: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.If):
                continue
            if not any(
                isinstance(stmt, (ast.Raise, ast.Return, ast.Continue))
                for stmt in node.body
            ):
                continue
            for cmp in ast.walk(node.test):
                if not isinstance(cmp, ast.Compare):
                    continue
                for side in (cmp.left, *cmp.comparators):
                    try:
                        texts.add(ast.unparse(side))
                    except Exception:  # pragma: no cover - unparse total
                        continue
        return frozenset(texts)

    def _safe_assignments(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: frozenset[str],
    ) -> frozenset[str]:
        """Local names whose (some) assigned value is itself safe.

        Iterated to a fixpoint so chains like ``step = eps * big``
        then ``bump = step.copy()`` resolve; a name with one safe
        binding counts (the common rebind is ``x = np.where(c, -x, x)``
        which preserves safety).
        """
        known = set(ctx)
        changed = True
        while changed:
            changed = False
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign):
                    continue
                if len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name) or target.id in known:
                    continue
                if self._safe_expr(node.value, frozenset(known)):
                    known.add(target.id)
                    changed = True
        return frozenset(known - set(ctx))

    @staticmethod
    def _is_errstate(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        dotted = _dotted_name(expr.func)
        return dotted is not None and dotted.split(".")[-1] == "errstate"

    def _violation(self, node: ast.AST, ctx: frozenset[str]) -> str | None:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            if not self._safe_expr(node.right, ctx):
                return (
                    "unguarded division by "
                    f"{_brief(node.right)} may emit NaN/Inf"
                )
            return None
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
            if not self._safe_expr(node.value, ctx):
                return (
                    "unguarded in-place division by "
                    f"{_brief(node.value)} may emit NaN/Inf"
                )
            return None
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is None:
                return None
            head, _, tail = dotted.partition(".")
            if head not in {"np", "numpy"} or not tail:
                return None
            fname = tail.split(".")[-1]
            if fname in self._RISKY_FUNCS and node.args:
                nonneg = fname == "sqrt"
                if not self._safe_expr(node.args[0], ctx, nonneg=nonneg):
                    return (
                        f"unguarded np.{fname} of "
                        f"{_brief(node.args[0])} may emit NaN/Inf"
                    )
            return None
        return None

    def _safe_expr(
        self, expr: ast.expr, ctx: frozenset[str], *, nonneg: bool = False
    ) -> bool:
        """Whether *expr* is a guarded operand in context *ctx*.

        *ctx* holds expression texts established safe (module constants,
        validator-checked attributes, raise-guarded names, safe local
        bindings). *nonneg* relaxes to "cannot be negative" for
        ``np.sqrt``, whose only hazard is a negative argument.
        """
        if isinstance(expr, ast.Constant):
            if not isinstance(expr.value, (int, float)):
                return False
            return expr.value != 0 or (nonneg and expr.value >= 0)
        if isinstance(expr, (ast.Name, ast.Attribute)):
            try:
                if ast.unparse(expr) in ctx:
                    return True
            except Exception:  # pragma: no cover - unparse total
                pass
            return (
                isinstance(expr, ast.Attribute)
                and expr.attr in self._POSITIVE_ATTRS
            )
        if isinstance(expr, ast.Subscript):
            return self._safe_expr(expr.value, ctx, nonneg=nonneg)
        if isinstance(expr, ast.Call):
            # The bare callable name: last attribute segment for method
            # and dotted calls (works even when the receiver is itself
            # an expression, e.g. ``(n + 1).astype(...)``).
            if isinstance(expr.func, ast.Attribute):
                fname = expr.func.attr
            elif isinstance(expr.func, ast.Name):
                fname = expr.func.id
            else:
                fname = ""
            if fname in self._SAFE_FUNCS:
                return True
            if fname in self._TRANSPARENT_CALLS and expr.args:
                return self._safe_expr(expr.args[0], ctx, nonneg=nonneg)
            if fname in self._TRANSPARENT_METHODS and isinstance(
                expr.func, ast.Attribute
            ):
                return self._safe_expr(expr.func.value, ctx, nonneg=nonneg)
            if nonneg and fname == "einsum" and len(expr.args) == 3:
                # A self inner product (same operand twice) is a sum of
                # squares — np.sqrt of it is always defined.
                try:
                    return ast.unparse(expr.args[1]) == ast.unparse(
                        expr.args[2]
                    )
                except Exception:  # pragma: no cover - unparse total
                    return False
            return False
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            return self._safe_expr(
                expr.left, ctx, nonneg=nonneg
            ) or self._safe_expr(expr.right, ctx, nonneg=nonneg)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
            # positive / positive stays positive (e.g. ``t / self.alpha``
            # as a np.power base).
            return self._safe_expr(expr.left, ctx) and self._safe_expr(
                expr.right, ctx
            )
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mult):
            if self._safe_expr(expr.left, ctx) and self._safe_expr(
                expr.right, ctx
            ):
                return True
            if nonneg:
                # x * x cannot be negative whatever x is.
                try:
                    return ast.unparse(expr.left) == ast.unparse(expr.right)
                except Exception:  # pragma: no cover - unparse total
                    return False
            return False
        if isinstance(expr, ast.UnaryOp) and not nonneg:
            return self._safe_expr(expr.operand, ctx)
        return False


def _brief(expr: ast.expr) -> str:
    """Short stable rendering of an operand for finding messages."""
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse covers all exprs
        return "<expr>"
    text = " ".join(text.split())
    return text if len(text) <= 40 else text[:37] + "..."


# ----------------------------------------------------------------------
# R10 — error-surface completeness
# ----------------------------------------------------------------------
class ErrorSurfaceRule:
    """Every serving error maps to a code; every op is dispatched."""

    RULE_ID = "R10"
    NAME = "error-surface"
    DESCRIPTION = (
        "every subclass of the registered error base must define or "
        "inherit a wire code, every protocol op needs a dispatch arm, "
        "and the protocol handler must catch-and-map the hierarchy"
    )

    def check_project(
        self, graph: CallGraph, config: LintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        if config.error_base:
            findings.extend(self._check_hierarchy(graph, config))
        for spec in config.protocols:
            findings.extend(self._check_protocol(graph, spec))
        return sorted(findings)

    def _check_hierarchy(
        self, graph: CallGraph, config: LintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        bases = {
            cls.qualname
            for cls in graph.classes.values()
            if cls.name == config.error_base
        }
        for cls in graph.subclasses_of(config.error_base):
            if self._has_code(graph, cls.qualname, stop=bases):
                continue
            findings.append(
                Finding(
                    path=cls.relpath,
                    line=cls.lineno,
                    rule=self.RULE_ID,
                    message=(
                        f"error class {cls.name} defines no wire code "
                        f"(class attribute 'code')"
                    ),
                    hint=(
                        "set a class-level code so error_code() maps it "
                        "instead of defaulting"
                    ),
                )
            )
        return findings

    def _has_code(
        self, graph: CallGraph, qualname: str, stop: set[str]
    ) -> bool:
        """``code`` defined on the class or an ancestor below the base.

        The base's own default is deliberately not enough — each
        concrete error names its code (or shares a parent that does).
        """
        seen: set[str] = set()
        queue = [qualname]
        while queue:
            qual = queue.pop(0)
            if qual in seen or qual in stop:
                continue
            seen.add(qual)
            cls = graph.classes.get(qual)
            if cls is None:
                continue
            if "code" in cls.class_consts:
                return True
            queue.extend(cls.bases)
        return False

    def _check_protocol(
        self, graph: CallGraph, spec: ProtocolSpec
    ) -> list[Finding]:
        module = next(
            (m for m in graph.modules if m.relpath == spec.module), None
        )
        if module is None:
            return []
        findings: list[Finding] = []
        ops, ops_line = self._ops_const(module, spec.ops_const)
        dispatcher = self._method_node(graph, spec.module, spec.dispatcher)
        if ops is None:
            findings.append(
                Finding(
                    path=spec.module,
                    line=1,
                    rule=self.RULE_ID,
                    message=(
                        f"protocol op registry {spec.ops_const} not found"
                    ),
                    hint="keep the ops tuple next to the dispatcher",
                )
            )
        elif dispatcher is None:
            findings.append(
                Finding(
                    path=spec.module,
                    line=ops_line,
                    rule=self.RULE_ID,
                    message=f"protocol dispatcher {spec.dispatcher} not found",
                    hint="update the R10 protocol registry if it moved",
                )
            )
        else:
            handled = {
                node.value
                for node in ast.walk(dispatcher)
                if isinstance(node, ast.Constant)
                and isinstance(node.value, str)
            }
            for op in ops:
                if op not in handled:
                    findings.append(
                        Finding(
                            path=spec.module,
                            line=dispatcher.lineno,
                            rule=self.RULE_ID,
                            message=(
                                f"protocol op '{op}' has no dispatch arm "
                                f"in {spec.dispatcher}"
                            ),
                            hint="add the op handler or drop it from the "
                            "registry",
                        )
                    )
        handler = self._method_node(graph, spec.module, spec.handler)
        if handler is None:
            findings.append(
                Finding(
                    path=spec.module,
                    line=1,
                    rule=self.RULE_ID,
                    message=f"protocol handler {spec.handler} not found",
                    hint="update the R10 protocol registry if it moved",
                )
            )
        elif not self._catches_and_maps(handler, spec):
            findings.append(
                Finding(
                    path=spec.module,
                    line=handler.lineno,
                    rule=self.RULE_ID,
                    message=(
                        f"{spec.handler} does not catch-and-map the error "
                        f"hierarchy ({'/'.join(sorted(spec.catch_types))} "
                        f"via {'/'.join(sorted(spec.mappers))})"
                    ),
                    hint="wrap dispatch in except ServingError and map "
                    "through error_code()",
                )
            )
        return findings

    @staticmethod
    def _ops_const(
        module: ModuleSource, name: str
    ) -> tuple[tuple[str, ...] | None, int]:
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets: list[ast.expr] = list(node.targets)
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if isinstance(value, (ast.Tuple, ast.List)):
                        ops = tuple(
                            element.value
                            for element in value.elts
                            if isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        )
                        return ops, node.lineno
        return None, 1

    @staticmethod
    def _method_node(
        graph: CallGraph, relpath: str, qualname: str
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        suffix = "." + qualname
        for fn in graph.functions.values():
            if fn.relpath == relpath and fn.qualname.endswith(suffix):
                return fn.node
        return None

    @staticmethod
    def _catches_and_maps(
        handler: ast.FunctionDef | ast.AsyncFunctionDef, spec: ProtocolSpec
    ) -> bool:
        for node in ast.walk(handler):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            caught = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            names = {
                (_dotted_name(expr) or "").split(".")[-1] for expr in caught
            }
            if not (names & spec.catch_types):
                continue
            for call in ast.walk(node):
                if isinstance(call, ast.Call):
                    dotted = _dotted_name(call.func)
                    if (
                        dotted is not None
                        and dotted.split(".")[-1] in spec.mappers
                    ):
                        return True
        return False


#: Every interprocedural rule, in id order.
GRAPH_RULES: tuple[type, ...] = (
    AsyncPurityRule,
    LockDisciplineRule,
    NumericHygieneRule,
    ErrorSurfaceRule,
)
