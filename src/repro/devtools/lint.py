"""Orchestrator and CLI for the project-invariant linter.

Run it either way::

    repro lint                         # via the main CLI
    python -m repro.devtools.lint      # standalone

Default behavior lints ``src/repro`` against the committed baseline
(``lint-baseline.json`` at the project root) and exits non-zero on any
non-baselined finding. ``--warn-only`` reports without failing (used
for ``benchmarks/`` and ``examples/``); ``--update-baseline``
regenerates the baseline file byte-identically from the current
findings.

Two layers of rules run by default: the per-module passes R1–R6
(:mod:`repro.devtools.rules`) and the interprocedural passes R7–R10
(:mod:`repro.devtools.graph_rules`), the latter over a project-wide
call graph (:mod:`repro.devtools.callgraph`) built from the same
parsed trees. Parses are memoized on disk via
:mod:`repro.devtools.astcache` (``--no-cache`` opts out); findings are
byte-identical with the cache on or off. A full default run also emits
``W1`` findings for suppression comments that no longer silence
anything, so ``# repro-lint: disable=`` lines cannot rot in place.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import sys
from collections import Counter
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.devtools.astcache import AstCache, default_cache_path
from repro.devtools.baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.devtools.callgraph import build_callgraph
from repro.devtools.findings import Finding, suppressions_for
from repro.devtools.graph_rules import GRAPH_RULES
from repro.devtools.reporting import render_json, render_text
from repro.devtools.rules import ALL_RULES, LintConfig, ModuleSource, default_config
from repro.devtools.sarif import render_sarif

__all__ = [
    "LintResult",
    "discover_project_root",
    "iter_python_files",
    "main",
    "run_lint",
]


@dataclasses.dataclass(frozen=True)
class LintResult:
    """Everything one lint run produced.

    ``new`` are the findings that gate the exit code; ``baselined``
    matched the committed baseline; ``suppressed`` counts findings
    silenced by same-line ``# repro-lint: disable=`` comments;
    ``stale_baseline`` counts baseline entries that matched nothing.
    """

    new: tuple[Finding, ...]
    baselined: tuple[Finding, ...]
    suppressed: int
    checked_files: int
    stale_baseline: int = 0

    @property
    def all_findings(self) -> tuple[Finding, ...]:
        """New + baselined findings, in report order."""
        return tuple(sorted(self.new + self.baselined))


def discover_project_root(start: Path | None = None) -> Path:
    """Nearest ancestor of *start* (default: cwd) with a pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return here


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Every ``.py`` file under *paths* (files kept as-is), sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for found in path.rglob("*.py"):
                if "__pycache__" not in found.parts:
                    files.add(found.resolve())
        elif path.suffix == ".py":
            files.add(path.resolve())
    return sorted(files)


def _load_module(
    path: Path, root: Path, cache: AstCache | None
) -> ModuleSource | Finding:
    """Parse one file; a syntax error is itself a finding (rule E1)."""
    try:
        relpath = path.relative_to(root).as_posix()
    except ValueError:
        relpath = path.as_posix()
    text = path.read_text(encoding="utf-8")
    tree = cache.get(path) if cache is not None else None
    if tree is None:
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            return Finding(
                path=relpath,
                line=exc.lineno or 1,
                rule="E1",
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error",
            )
        if cache is not None:
            cache.put(path, tree)
    return ModuleSource(
        relpath=relpath, tree=tree, lines=tuple(text.splitlines())
    )


def _unused_suppressions(
    tables: Mapping[str, Mapping[int, frozenset[str]]],
    used: Mapping[tuple[str, int], set[str]],
) -> list[Finding]:
    """W1 findings for suppression comments that silence nothing.

    A ``disable=W1`` token opts a line out; ``disable=all`` is flagged
    only when it matched no finding at all.
    """
    findings: list[Finding] = []
    hint = "delete the stale suppression comment"
    for relpath in sorted(tables):
        for line, tokens in sorted(tables[relpath].items()):
            if "W1" in tokens:
                continue
            matched = used.get((relpath, line), set())
            if "all" in tokens:
                if not matched:
                    findings.append(
                        Finding(
                            path=relpath,
                            line=line,
                            rule="W1",
                            message=(
                                "suppression comment (disable=all) matches "
                                "no finding"
                            ),
                            hint=hint,
                        )
                    )
                continue
            unused = sorted(tokens - matched)
            if unused:
                findings.append(
                    Finding(
                        path=relpath,
                        line=line,
                        rule="W1",
                        message=(
                            f"suppression for {', '.join(unused)} matches "
                            "no finding"
                        ),
                        hint=hint,
                    )
                )
    return findings


def run_lint(
    paths: Sequence[Path],
    config: LintConfig | None = None,
    *,
    root: Path | None = None,
    rules: Sequence[type] | None = None,
    graph_rules: Sequence[type] | None = None,
    baseline: Counter[tuple[str, str, str]] | None = None,
    cache: AstCache | None = None,
) -> LintResult:
    """Lint every Python file under *paths*.

    *root* anchors the project-relative paths findings are reported
    under (default: discovered from cwd); *rules* / *graph_rules*
    restrict the per-module and interprocedural rule sets (passing
    ``rules`` alone runs no graph rules, and vice versa); *baseline*
    grandfathers matching findings; *cache* memoizes parsed trees.
    The W1 unused-suppression check runs only on a full default run,
    where every rule that could justify a suppression is active.
    """
    config = config if config is not None else default_config()
    root = root if root is not None else discover_project_root()
    full_run = rules is None and graph_rules is None
    active = [rule() for rule in (rules if rules is not None else ALL_RULES)]
    graph_active = [
        rule()
        for rule in (
            graph_rules
            if graph_rules is not None
            else (GRAPH_RULES if rules is None else ())
        )
    ]
    raw: list[Finding] = []
    findings: list[Finding] = []
    modules: list[ModuleSource] = []
    tables: dict[str, dict[int, frozenset[str]]] = {}
    files = iter_python_files(paths)
    for path in files:
        module = _load_module(path, root, cache)
        if isinstance(module, Finding):
            findings.append(module)
            continue
        modules.append(module)
        tables[module.relpath] = suppressions_for(module.lines)
        for rule in active:
            raw.extend(rule.check(module, config))
    if graph_active and modules:
        graph = build_callgraph(modules, config)
        for rule in graph_active:
            raw.extend(rule.check_project(graph, config))
    suppressed = 0
    used: dict[tuple[str, int], set[str]] = {}
    for finding in raw:
        tokens = tables.get(finding.path, {}).get(finding.line)
        if tokens is not None and ("all" in tokens or finding.rule in tokens):
            suppressed += 1
            used.setdefault((finding.path, finding.line), set()).add(
                finding.rule
            )
        else:
            findings.append(finding)
    if full_run:
        findings.extend(_unused_suppressions(tables, used))
    findings.sort()
    new, grandfathered, stale = apply_baseline(
        findings, baseline if baseline is not None else Counter()
    )
    return LintResult(
        new=tuple(new),
        baselined=tuple(grandfathered),
        suppressed=suppressed,
        checked_files=len(files),
        stale_baseline=stale,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Project-invariant linter. Per-module rules: env boundary "
            "(R1), determinism (R2), options threading (R3), "
            "picklability (R4), structure (R5), exception hygiene (R6). "
            "Call-graph rules: async purity (R7), lock/await discipline "
            "(R8), numeric hygiene (R9), error-surface completeness "
            "(R10). W1 flags stale suppression comments. See "
            "docs/static-analysis.md."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src/repro at the "
        "project root)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="additionally write a SARIF 2.1.0 log to PATH (keeps the "
        "chosen --format on stdout and the strict exit code)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run, e.g. R1,R7 (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file (default: {BASELINE_FILENAME} at the "
        "project root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding gates the exit code",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="regenerate the baseline file from the current findings "
        "(byte-identical for an unchanged tree) and exit 0",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report findings but always exit 0 (benchmarks/examples mode)",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also list grandfathered findings in the text report",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="parse every file from scratch (skip the on-disk AST cache; "
        "REPRO_ANALYSIS_CACHE=off does the same)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _selected_rules(
    selector: str | None,
) -> tuple[list[type] | None, list[type] | None]:
    """Split a ``--select`` string into (module rules, graph rules).

    ``None`` for both means the full default run.
    """
    if selector is None:
        return None, None
    wanted = {token.strip().upper() for token in selector.split(",") if token.strip()}
    known = {rule.RULE_ID for rule in (*ALL_RULES, *GRAPH_RULES)}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return (
        [rule for rule in ALL_RULES if rule.RULE_ID in wanted],
        [rule for rule in GRAPH_RULES if rule.RULE_ID in wanted],
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in (*ALL_RULES, *GRAPH_RULES):
            print(f"{rule.RULE_ID:4s} {rule.NAME:18s} {rule.DESCRIPTION}")
        print(
            "W1   unused-suppression a disable= comment that no longer "
            "silences any finding (full runs only)"
        )
        return 0
    root = discover_project_root()
    paths = (
        [Path(p) for p in args.paths] if args.paths else [root / "src" / "repro"]
    )
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    baseline_path = (
        Path(args.baseline) if args.baseline else root / BASELINE_FILENAME
    )
    try:
        rules, graph_rules = _selected_rules(args.select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = (
        None if args.no_cache else AstCache.load(default_cache_path(root))
    )

    if args.update_baseline:
        result = run_lint(
            paths, root=root, rules=rules, graph_rules=graph_rules, cache=cache
        )
        if cache is not None:
            cache.save()
        baseline_path.write_text(
            render_baseline(result.new), encoding="utf-8"
        )
        print(
            f"wrote {len(result.new)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baseline = (
        Counter() if args.no_baseline else load_baseline(baseline_path)
    )
    result = run_lint(
        paths,
        root=root,
        rules=rules,
        graph_rules=graph_rules,
        baseline=baseline,
        cache=cache,
    )
    if cache is not None:
        cache.save()
    if args.sarif is not None:
        Path(args.sarif).write_text(render_sarif(result), encoding="utf-8")
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, verbose_baselined=args.show_baselined))
    if args.warn_only:
        return 0
    return 1 if result.new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
