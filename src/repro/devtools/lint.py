"""Orchestrator and CLI for the project-invariant linter.

Run it either way::

    repro lint                         # via the main CLI
    python -m repro.devtools.lint      # standalone

Default behavior lints ``src/repro`` against the committed baseline
(``lint-baseline.json`` at the project root) and exits non-zero on any
non-baselined finding. ``--warn-only`` reports without failing (used
for ``benchmarks/`` and ``examples/``); ``--update-baseline``
regenerates the baseline file byte-identically from the current
findings.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import sys
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.devtools.findings import Finding, is_suppressed, suppressions_for
from repro.devtools.reporting import render_json, render_text
from repro.devtools.rules import ALL_RULES, LintConfig, ModuleSource, default_config

__all__ = [
    "LintResult",
    "discover_project_root",
    "iter_python_files",
    "main",
    "run_lint",
]


@dataclasses.dataclass(frozen=True)
class LintResult:
    """Everything one lint run produced.

    ``new`` are the findings that gate the exit code; ``baselined``
    matched the committed baseline; ``suppressed`` counts findings
    silenced by same-line ``# repro-lint: disable=`` comments;
    ``stale_baseline`` counts baseline entries that matched nothing.
    """

    new: tuple[Finding, ...]
    baselined: tuple[Finding, ...]
    suppressed: int
    checked_files: int
    stale_baseline: int = 0

    @property
    def all_findings(self) -> tuple[Finding, ...]:
        """New + baselined findings, in report order."""
        return tuple(sorted(self.new + self.baselined))


def discover_project_root(start: Path | None = None) -> Path:
    """Nearest ancestor of *start* (default: cwd) with a pyproject.toml."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return here


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Every ``.py`` file under *paths* (files kept as-is), sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for found in path.rglob("*.py"):
                if "__pycache__" not in found.parts:
                    files.add(found.resolve())
        elif path.suffix == ".py":
            files.add(path.resolve())
    return sorted(files)


def _load_module(path: Path, root: Path) -> ModuleSource | Finding:
    """Parse one file; a syntax error is itself a finding (rule E1)."""
    try:
        relpath = path.relative_to(root).as_posix()
    except ValueError:
        relpath = path.as_posix()
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            path=relpath,
            line=exc.lineno or 1,
            rule="E1",
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error",
        )
    return ModuleSource(
        relpath=relpath, tree=tree, lines=tuple(text.splitlines())
    )


def run_lint(
    paths: Sequence[Path],
    config: LintConfig | None = None,
    *,
    root: Path | None = None,
    rules: Sequence[type] | None = None,
    baseline: Counter[tuple[str, str, str]] | None = None,
) -> LintResult:
    """Lint every Python file under *paths*.

    *root* anchors the project-relative paths findings are reported
    under (default: discovered from cwd); *rules* restricts the rule
    set; *baseline* grandfathers matching findings.
    """
    config = config if config is not None else default_config()
    root = root if root is not None else discover_project_root()
    active = [rule() for rule in (rules if rules is not None else ALL_RULES)]
    findings: list[Finding] = []
    suppressed = 0
    files = iter_python_files(paths)
    for path in files:
        module = _load_module(path, root)
        if isinstance(module, Finding):
            findings.append(module)
            continue
        suppressions = suppressions_for(module.lines)
        for rule in active:
            for finding in rule.check(module, config):
                if is_suppressed(finding, suppressions):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort()
    new, grandfathered, stale = apply_baseline(
        findings, baseline if baseline is not None else Counter()
    )
    return LintResult(
        new=tuple(new),
        baselined=tuple(grandfathered),
        suppressed=suppressed,
        checked_files=len(files),
        stale_baseline=stale,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Project-invariant linter: env boundary (R1), determinism "
            "(R2), options threading (R3), picklability (R4), structure "
            "(R5), exception hygiene (R6). See docs/static-analysis.md."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src/repro at the "
        "project root)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run, e.g. R1,R2 (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file (default: {BASELINE_FILENAME} at the "
        "project root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding gates the exit code",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="regenerate the baseline file from the current findings "
        "(byte-identical for an unchanged tree) and exit 0",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report findings but always exit 0 (benchmarks/examples mode)",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also list grandfathered findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _selected_rules(selector: str | None) -> list[type]:
    if selector is None:
        return list(ALL_RULES)
    wanted = {token.strip().upper() for token in selector.split(",") if token.strip()}
    known = {rule.RULE_ID for rule in ALL_RULES}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [rule for rule in ALL_RULES if rule.RULE_ID in wanted]


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.RULE_ID}  {rule.NAME:18s} {rule.DESCRIPTION}")
        return 0
    root = discover_project_root()
    paths = (
        [Path(p) for p in args.paths] if args.paths else [root / "src" / "repro"]
    )
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    baseline_path = (
        Path(args.baseline) if args.baseline else root / BASELINE_FILENAME
    )
    try:
        rules = _selected_rules(args.select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        result = run_lint(paths, root=root, rules=rules)
        baseline_path.write_text(
            render_baseline(result.new), encoding="utf-8"
        )
        print(
            f"wrote {len(result.new)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baseline = (
        Counter() if args.no_baseline else load_baseline(baseline_path)
    )
    result = run_lint(paths, root=root, rules=rules, baseline=baseline)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose_baselined=args.show_baselined))
    if args.warn_only:
        return 0
    return 1 if result.new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
