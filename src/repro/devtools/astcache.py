"""On-disk AST cache keyed by file identity (mtime + size).

Parsing ~120 modules dominates a warm ``repro lint`` run now that the
call-graph rules need every file's tree up front. The cache pickles
parsed :class:`ast.Module` objects keyed by absolute path, validated
against ``st_mtime_ns`` and ``st_size`` so any edit (or checkout)
invalidates the entry. Failure is never fatal: a missing, unreadable,
version-skewed, or corrupted cache file silently degrades to clean
parses, and findings are byte-identical with the cache on or off (the
cache stores only what ``ast.parse`` would have produced).

The location is controlled by the registered ``REPRO_ANALYSIS_CACHE``
environment knob: unset/empty picks ``.repro-lint-cache`` at the
project root, an off word (``0``/``off``/``no``/``none``/``false``/
``disabled``) disables caching, anything else is used as the path.
"""

from __future__ import annotations

import ast
import dataclasses
import pickle
from pathlib import Path

from repro._env import read_env

__all__ = ["AstCache", "CACHE_ENV_VAR", "DEFAULT_CACHE_FILENAME", "default_cache_path"]

CACHE_ENV_VAR = "REPRO_ANALYSIS_CACHE"

DEFAULT_CACHE_FILENAME = ".repro-lint-cache"

#: Bump when the on-disk layout changes; mismatched files are discarded.
_CACHE_VERSION = 1

_OFF_WORDS = frozenset({"0", "off", "no", "none", "false", "disabled"})


def default_cache_path(root: Path) -> Path | None:
    """Resolve the cache location for *root*, honoring the env knob.

    Returns ``None`` when caching is disabled via an off word.
    """
    raw = read_env(CACHE_ENV_VAR, "") or ""
    value = raw.strip()
    if value.lower() in _OFF_WORDS:
        return None
    if value:
        return Path(value).expanduser()
    return root / DEFAULT_CACHE_FILENAME


@dataclasses.dataclass
class AstCache:
    """Pickled ``{path: (mtime_ns, size, tree)}`` with stat validation.

    ``path=None`` is the disabled cache: every lookup misses and
    :meth:`save` is a no-op, so callers never need to branch.
    """

    path: Path | None
    entries: dict[str, tuple[int, int, ast.Module]] = dataclasses.field(
        default_factory=dict
    )
    hits: int = 0
    misses: int = 0
    _dirty: bool = dataclasses.field(default=False, repr=False)

    @classmethod
    def load(cls, path: Path | None) -> AstCache:
        """Read the cache at *path*; any failure yields an empty cache."""
        if path is None or not path.exists():
            return cls(path)
        try:
            payload = pickle.loads(path.read_bytes())
            if (
                not isinstance(payload, dict)
                or payload.get("version") != _CACHE_VERSION
                or not isinstance(payload.get("entries"), dict)
            ):
                return cls(path)
            return cls(path, entries=payload["entries"])
        except Exception:
            # Corrupted / truncated / unpicklable: fall back to clean
            # parses and overwrite on the next save.
            return cls(path)

    def get(self, path: Path) -> ast.Module | None:
        """The cached tree for *path* if its mtime+size still match."""
        if self.path is None:
            return None
        entry = self.entries.get(str(path))
        if entry is None:
            self.misses += 1
            return None
        try:
            stat = path.stat()
        except OSError:
            self.misses += 1
            return None
        mtime_ns, size, tree = entry
        if stat.st_mtime_ns != mtime_ns or stat.st_size != size:
            self.misses += 1
            return None
        self.hits += 1
        return tree

    def put(self, path: Path, tree: ast.Module) -> None:
        """Record the freshly parsed *tree* for *path*."""
        if self.path is None:
            return
        try:
            stat = path.stat()
        except OSError:
            return
        self.entries[str(path)] = (stat.st_mtime_ns, stat.st_size, tree)
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache; I/O errors are non-fatal."""
        if self.path is None or not self._dirty:
            return
        payload = {"version": _CACHE_VERSION, "entries": self.entries}
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            tmp.write_bytes(pickle.dumps(payload))
            tmp.replace(self.path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                return
