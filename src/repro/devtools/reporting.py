"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from collections import Counter
from typing import TYPE_CHECKING, Any

__all__ = ["render_json", "render_text"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint import LintResult


def render_text(result: "LintResult", *, verbose_baselined: bool = False) -> str:
    """Human-readable report: one line per new finding plus a summary."""
    lines = [finding.render() for finding in result.new]
    if verbose_baselined:
        lines.extend(
            f"{finding.render()} [baselined]" for finding in result.baselined
        )
    by_rule = Counter(finding.rule for finding in result.new)
    summary = (
        f"{len(result.new)} finding(s)"
        + (
            " (" + ", ".join(f"{r}: {n}" for r, n in sorted(by_rule.items())) + ")"
            if by_rule
            else ""
        )
        + f" in {result.checked_files} file(s); "
        + f"{len(result.baselined)} baselined, {result.suppressed} suppressed"
    )
    if result.stale_baseline:
        summary += f", {result.stale_baseline} stale baseline entr(y/ies)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: "LintResult") -> str:
    """Machine-readable report (stable key order)."""
    payload: dict[str, Any] = {
        "version": 1,
        "checked_files": result.checked_files,
        "counts": dict(
            sorted(Counter(finding.rule for finding in result.new).items())
        ),
        "findings": [finding.to_dict() for finding in result.new],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "suppressed": result.suppressed,
        "stale_baseline": result.stale_baseline,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
