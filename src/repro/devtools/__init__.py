"""Project devtools: the invariant linter and its supporting pieces.

``repro.devtools.lint`` is an AST-based static-analysis pass that turns
the engine's load-bearing conventions — the single env boundary, seeded
randomness, ``options=`` threading, picklable work units, frozen
dataclasses, honest exception handling — into machine-checked
invariants. Run it as ``repro lint`` or
``python -m repro.devtools.lint``; see ``docs/static-analysis.md`` for
the rule catalogue, suppression syntax, and the baseline workflow.

Submodules are loaded lazily (PEP 562) so ``python -m
repro.devtools.lint`` does not import the package's public surface
twice (runpy would warn about the double import).
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - static-analysis imports only
    from repro.devtools.astcache import AstCache, default_cache_path
    from repro.devtools.baseline import load_baseline, render_baseline
    from repro.devtools.callgraph import CallGraph, build_callgraph
    from repro.devtools.findings import Finding, suppressions_for
    from repro.devtools.graph_rules import GRAPH_RULES
    from repro.devtools.lint import LintResult, main, run_lint
    from repro.devtools.rules import ALL_RULES, LintConfig, default_config
    from repro.devtools.sarif import render_sarif

__all__ = [
    "ALL_RULES",
    "AstCache",
    "CallGraph",
    "Finding",
    "GRAPH_RULES",
    "LintConfig",
    "LintResult",
    "build_callgraph",
    "default_cache_path",
    "default_config",
    "load_baseline",
    "main",
    "render_baseline",
    "render_sarif",
    "run_lint",
    "suppressions_for",
]

#: Public name → submodule that defines it (for lazy loading).
_EXPORTS = {
    "ALL_RULES": "rules",
    "AstCache": "astcache",
    "CallGraph": "callgraph",
    "Finding": "findings",
    "GRAPH_RULES": "graph_rules",
    "LintConfig": "rules",
    "LintResult": "lint",
    "build_callgraph": "callgraph",
    "default_cache_path": "astcache",
    "default_config": "rules",
    "load_baseline": "baseline",
    "main": "lint",
    "render_baseline": "baseline",
    "render_sarif": "sarif",
    "run_lint": "lint",
    "suppressions_for": "findings",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(f"{__name__}.{module_name}")
    return getattr(module, name)
