"""Project-wide symbol table and conservative call graph.

This is the interprocedural layer under lint rules R7–R10. Like every
other devtools pass it **parses, never imports**: the graph is built
from the same :class:`~repro.devtools.rules.ModuleSource` trees the
per-module rules see, so analysing ``src/repro`` stays dependency-free
and side-effect-free.

Resolution is deliberately conservative (over-approximate): a call is
linked to every project function it *could* reach, and unresolvable
attribute calls fall back to matching all project methods with the same
name. Three mechanisms keep the over-approximation useful:

* a light type environment — parameter / variable / class-attribute
  annotations that name project classes make ``obj.method()`` calls
  exact, so annotating code tightens its own analysis;
* a name-fallback ignore list of ubiquitous container/stream method
  names (``get``, ``append``, ``close``, …) that would otherwise wire
  unrelated code together;
* callables passed *as arguments* (``loop.run_in_executor(None, fn)``,
  ``executor.map(fn, …)``) never become edges — only calls do — which
  is precisely the worker-pool funnel R7 permits.

Guard dataflow: calls under ``if <guard>:`` (or after an early
``if not <guard>: return``) are annotated as requiring that guard,
and call sites passing ``guard=False`` — or forwarding an already
false guard — prune those edges during reachability. This models the
``allow_refit`` / ``allow_reselect`` contract the serving layer uses
to keep solves off the event loop.
"""

from __future__ import annotations

import ast
import dataclasses
from collections import deque
from typing import Iterable, Mapping, Sequence

from repro.devtools.rules import LintConfig, ModuleSource, _dotted_name

__all__ = [
    "BlockingPath",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "build_callgraph",
    "module_name_for",
]

#: Attribute-call names never resolved by the name-based fallback:
#: ubiquitous container/stream/path methods that would wire unrelated
#: code together (``self._times.append`` is a list append, not
#: ``EpisodeStoreWriter.append``). Blocking helpers that matter to R7
#: must carry distinctive names or full dotted sink entries.
_FALLBACK_IGNORE = frozenset(
    {
        "add",
        "append",
        "cancel",
        "clear",
        "close",
        "copy",
        "count",
        "decode",
        "discard",
        "drain",
        "encode",
        "endswith",
        "exists",
        "extend",
        "flush",
        "format",
        "get",
        "index",
        "insert",
        "is_dir",
        "is_file",
        "items",
        "join",
        "keys",
        "kill",
        "lower",
        "mkdir",
        "open",
        "pop",
        "popitem",
        "put",
        "read",
        "readline",
        "remove",
        "replace",
        "setdefault",
        "sort",
        "split",
        "startswith",
        "strip",
        "terminate",
        "title",
        "unlink",
        "update",
        "upper",
        "values",
        "wait",
        "write",
    }
)


def module_name_for(relpath: str) -> str:
    """Dotted module name for a project-relative path.

    ``src/repro/serving/server.py`` → ``repro.serving.server``;
    package ``__init__.py`` files map to the package itself.
    """
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclasses.dataclass(eq=False)
class FunctionInfo:
    """One function or method in the symbol table."""

    qualname: str
    relpath: str
    lineno: int
    name: str
    is_async: bool
    class_qualname: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Project class qualname named by the return annotation, if any
    #: (resolved in the second build pass).
    returns_class: str | None = None

    @property
    def shortname(self) -> str:
        """Display name: ``Class.method`` or the bare function name."""
        if self.class_qualname is not None:
            return f"{self.class_qualname.rsplit('.', 1)[-1]}.{self.name}"
        return self.name


@dataclasses.dataclass(eq=False)
class ClassInfo:
    """One class in the symbol table."""

    qualname: str
    relpath: str
    lineno: int
    name: str
    node: ast.ClassDef
    #: Import-resolved dotted base names (project or external).
    bases: tuple[str, ...] = ()
    #: Bare method name → function qualname.
    methods: dict[str, str] = dataclasses.field(default_factory=dict)
    #: Attribute name → project class qualname, from class-body and
    #: ``self.x: T = …`` annotations (resolved in the second pass).
    attr_types: dict[str, str] = dataclasses.field(default_factory=dict)
    #: Names bound by plain assignment in the class body (class vars).
    class_consts: frozenset[str] = frozenset()


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call expression inside one function."""

    lineno: int
    #: Project function qualnames this call may reach (empty for a
    #: purely external call).
    callees: tuple[str, ...]
    #: Import-resolved dotted target as written, for sink matching.
    external: str | None
    #: True when resolution was exact (types/imports), False when the
    #: callees come from the name-based fallback.
    exact: bool
    #: Guard parameters that must be truthy for this call to execute.
    requires: frozenset[str]
    #: Guard keyword arguments at the site: ``(guard, source)`` where
    #: source ``""`` means a literal falsy constant and a name means
    #: the caller forwards its own guard parameter.
    guards: tuple[tuple[str, str], ...]


@dataclasses.dataclass(frozen=True)
class BlockingPath:
    """A shortest call path from an async root to a blocking sink."""

    #: Display names from the root function to the last project hop.
    hops: tuple[str, ...]
    #: The matched blocking sink, as resolved at the final call site.
    sink: str
    #: Line (in the root function's file) of the first hop.
    lineno: int

    def render(self) -> str:
        """``root -> hop -> … -> sink`` arrow chain for messages."""
        return " -> ".join((*self.hops, self.sink))


class _SinkMatcher:
    """Matches resolved call targets against the configured sink list.

    Entries ending in ``.*`` are prefix patterns (``scipy.optimize.*``);
    plain entries match the full dotted target or any dotted suffix
    (``fit_least_squares`` matches
    ``repro.fitting.least_squares.fit_least_squares``).
    """

    def __init__(self, sinks: Iterable[str]) -> None:
        self._prefixes: list[str] = []
        self._exact: list[str] = []
        for entry in sinks:
            if entry.endswith(".*"):
                self._prefixes.append(entry[:-1])
            else:
                self._exact.append(entry)

    def match(self, target: str | None) -> str | None:
        if target is None:
            return None
        for prefix in self._prefixes:
            if target.startswith(prefix) or target == prefix[:-1]:
                return target
        for entry in self._exact:
            if target == entry or target.endswith("." + entry):
                return target
        return None


@dataclasses.dataclass(eq=False)
class CallGraph:
    """The assembled symbol table, call edges, and source modules."""

    functions: dict[str, FunctionInfo]
    classes: dict[str, ClassInfo]
    calls: dict[str, tuple[CallSite, ...]]
    modules: tuple[ModuleSource, ...]

    def methods_named(self, name: str) -> tuple[str, ...]:
        """Every project method with bare name *name* (fallback index)."""
        return self._method_index.get(name, ())

    def __post_init__(self) -> None:
        index: dict[str, list[str]] = {}
        for cls in self.classes.values():
            for bare, qual in cls.methods.items():
                index.setdefault(bare, []).append(qual)
        self._method_index: dict[str, tuple[str, ...]] = {
            bare: tuple(sorted(quals)) for bare, quals in index.items()
        }

    def lookup_method(self, class_qualname: str, name: str) -> str | None:
        """Resolve *name* on a class, walking project base classes."""
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            qual = queue.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            found = cls.methods.get(name)
            if found is not None:
                return found
            queue.extend(base for base in cls.bases if base in self.classes)
        return None

    def subclasses_of(self, base_name: str) -> list[ClassInfo]:
        """Project classes transitively deriving from *base_name*.

        *base_name* is matched by bare class name; the bases themselves
        are not included.
        """
        roots = {
            cls.qualname for cls in self.classes.values() if cls.name == base_name
        }
        if not roots:
            return []
        out: list[ClassInfo] = []
        changed = True
        member = set(roots)
        while changed:
            changed = False
            for cls in self.classes.values():
                if cls.qualname in member:
                    continue
                if any(base in member for base in cls.bases):
                    member.add(cls.qualname)
                    out.append(cls)
                    changed = True
        return sorted(out, key=lambda cls: cls.qualname)

    def blocking_path(
        self, root: str, sinks: Sequence[str]
    ) -> BlockingPath | None:
        """Shortest guarded-reachability path from *root* to any sink.

        Returns ``None`` when every path to a blocking sink is pruned
        by the guard dataflow (or none exists). Deterministic: BFS in
        source order.
        """
        matcher = _SinkMatcher(sinks)
        start = (root, frozenset())
        parents: dict[
            tuple[str, frozenset[str]],
            tuple[tuple[str, frozenset[str]] | None, int],
        ] = {start: (None, 0)}
        queue: deque[tuple[str, frozenset[str]]] = deque([start])
        while queue:
            state = queue.popleft()
            qual, falsy = state
            for site in self.calls.get(qual, ()):
                if site.requires & falsy:
                    continue
                hit = matcher.match(site.external)
                if hit is None:
                    for callee in site.callees:
                        hit = matcher.match(callee)
                        if hit is not None:
                            break
                if hit is not None:
                    return self._reconstruct(parents, state, site.lineno, hit)
                for callee in site.callees:
                    propagated = frozenset(
                        guard
                        for guard, source in site.guards
                        if source == "" or source in falsy
                    )
                    next_state = (callee, propagated)
                    if next_state not in parents:
                        parents[next_state] = (state, site.lineno)
                        queue.append(next_state)
        return None

    def _reconstruct(
        self,
        parents: Mapping[
            tuple[str, frozenset[str]],
            tuple[tuple[str, frozenset[str]] | None, int],
        ],
        last: tuple[str, frozenset[str]],
        sink_lineno: int,
        sink: str,
    ) -> BlockingPath:
        chain: list[str] = []
        lines: list[int] = [sink_lineno]
        state: tuple[str, frozenset[str]] | None = last
        while state is not None:
            chain.append(state[0])
            prev, lineno = parents[state]
            if prev is not None:
                lines.append(lineno)
            state = prev
        chain.reverse()
        lines.reverse()
        hops = tuple(
            self.functions[qual].shortname if qual in self.functions else qual
            for qual in chain
        )
        short_sink = (
            self.functions[sink].shortname if sink in self.functions else sink
        )
        return BlockingPath(hops=hops, sink=short_sink, lineno=lines[0])


# ----------------------------------------------------------------------
# Build
# ----------------------------------------------------------------------
@dataclasses.dataclass(eq=False)
class _ModuleContext:
    """Per-module resolution state shared by the build passes."""

    module: ModuleSource
    modname: str
    imports: dict[str, str]
    #: Local top-level symbol name → qualname (functions and classes).
    locals: dict[str, str]

    def resolve_head(self, name: str) -> str:
        local = self.locals.get(name)
        if local is not None:
            return local
        return self.imports.get(name, name)

    def resolve_dotted(self, dotted: str) -> str:
        head, _, tail = dotted.partition(".")
        resolved = self.resolve_head(head)
        return f"{resolved}.{tail}" if tail else resolved


def _resolved_imports(tree: ast.Module, modname: str) -> dict[str, str]:
    """Local name → absolute dotted path, including relative imports."""
    table: dict[str, str] = {}
    package_parts = modname.split(".")[:-1] if modname else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                parts = package_parts[: len(package_parts) - (node.level - 1)]
                if node.module:
                    parts = [*parts, node.module]
                base = ".".join(parts)
            for alias in node.names:
                table[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    return table


def _annotation_candidates(expr: ast.expr | None) -> list[str]:
    """Dotted class names an annotation may denote an instance of.

    ``Optional[T]`` / ``T | None`` / ``Union[…]`` unwrap; generic
    containers (``list[T]``, ``Mapping[…]``) yield nothing — their
    receivers get stdlib methods, not project ones.
    """
    if expr is None:
        return []
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, str):
            try:
                parsed = ast.parse(expr.value, mode="eval").body
            except SyntaxError:
                return []
            return _annotation_candidates(parsed)
        return []
    if isinstance(expr, (ast.Name, ast.Attribute)):
        dotted = _dotted_name(expr)
        return [dotted] if dotted is not None and dotted != "None" else []
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        return _annotation_candidates(expr.left) + _annotation_candidates(expr.right)
    if isinstance(expr, ast.Subscript):
        base = _dotted_name(expr.value)
        tail = base.rsplit(".", 1)[-1] if base else ""
        if tail == "Optional":
            return _annotation_candidates(expr.slice)
        if tail == "Union":
            if isinstance(expr.slice, ast.Tuple):
                out: list[str] = []
                for element in expr.slice.elts:
                    out.extend(_annotation_candidates(element))
                return out
            return _annotation_candidates(expr.slice)
        return []
    return []


def build_callgraph(
    modules: Sequence[ModuleSource], config: LintConfig
) -> CallGraph:
    """Assemble the symbol table and call edges for *modules*."""
    functions: dict[str, FunctionInfo] = {}
    classes: dict[str, ClassInfo] = {}
    contexts: list[_ModuleContext] = []
    raw_bases: dict[str, list[ast.expr]] = {}
    raw_attr_anns: dict[str, list[tuple[str, ast.expr]]] = {}
    raw_returns: dict[str, ast.expr] = {}
    ctx_of_class: dict[str, _ModuleContext] = {}
    ctx_of_fn: dict[str, _ModuleContext] = {}

    # Pass 1: symbols.
    for module in modules:
        modname = module_name_for(module.relpath)
        ctx = _ModuleContext(
            module=module,
            modname=modname,
            imports=_resolved_imports(module.tree, modname),
            locals={},
        )
        contexts.append(ctx)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{modname}.{node.name}"
                ctx.locals[node.name] = qual
                functions[qual] = FunctionInfo(
                    qualname=qual,
                    relpath=module.relpath,
                    lineno=node.lineno,
                    name=node.name,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                    class_qualname=None,
                    node=node,
                )
                ctx_of_fn[qual] = ctx
                if node.returns is not None:
                    raw_returns[qual] = node.returns
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{modname}.{node.name}"
                ctx.locals[node.name] = cls_qual
                info = ClassInfo(
                    qualname=cls_qual,
                    relpath=module.relpath,
                    lineno=node.lineno,
                    name=node.name,
                    node=node,
                )
                classes[cls_qual] = info
                ctx_of_class[cls_qual] = ctx
                raw_bases[cls_qual] = list(node.bases)
                anns: list[tuple[str, ast.expr]] = []
                consts: set[str] = set()
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        meth_qual = f"{cls_qual}.{child.name}"
                        info.methods[child.name] = meth_qual
                        functions[meth_qual] = FunctionInfo(
                            qualname=meth_qual,
                            relpath=module.relpath,
                            lineno=child.lineno,
                            name=child.name,
                            is_async=isinstance(child, ast.AsyncFunctionDef),
                            class_qualname=cls_qual,
                            node=child,
                        )
                        ctx_of_fn[meth_qual] = ctx
                        if child.returns is not None:
                            raw_returns[meth_qual] = child.returns
                        for stmt in ast.walk(child):
                            if (
                                isinstance(stmt, ast.AnnAssign)
                                and isinstance(stmt.target, ast.Attribute)
                                and isinstance(stmt.target.value, ast.Name)
                                and stmt.target.value.id == "self"
                            ):
                                anns.append((stmt.target.attr, stmt.annotation))
                    elif isinstance(child, ast.AnnAssign) and isinstance(
                        child.target, ast.Name
                    ):
                        anns.append((child.target.id, child.annotation))
                        if child.value is not None:
                            consts.add(child.target.id)
                    elif isinstance(child, ast.Assign):
                        for target in child.targets:
                            if isinstance(target, ast.Name):
                                consts.add(target.id)
                info.class_consts = frozenset(consts)
                raw_attr_anns[cls_qual] = anns

    # Pass 2: resolve bases, attribute types, and return types.
    def resolve_class(ctx: _ModuleContext, candidates: list[str]) -> str | None:
        for candidate in candidates:
            resolved = ctx.resolve_dotted(candidate)
            if resolved in classes:
                return resolved
        return None

    for cls_qual, base_exprs in raw_bases.items():
        ctx = ctx_of_class[cls_qual]
        resolved_bases: list[str] = []
        for expr in base_exprs:
            dotted = _dotted_name(expr)
            if dotted is not None:
                resolved_bases.append(ctx.resolve_dotted(dotted))
        classes[cls_qual].bases = tuple(resolved_bases)
    for cls_qual, anns in raw_attr_anns.items():
        ctx = ctx_of_class[cls_qual]
        for attr, expr in anns:
            resolved = resolve_class(ctx, _annotation_candidates(expr))
            if resolved is not None:
                classes[cls_qual].attr_types.setdefault(attr, resolved)
    for fn_qual, expr in raw_returns.items():
        ctx = ctx_of_fn[fn_qual]
        functions[fn_qual].returns_class = resolve_class(
            ctx, _annotation_candidates(expr)
        )

    graph = CallGraph(
        functions=functions, classes=classes, calls={}, modules=tuple(modules)
    )

    # Pass 3: call sites.
    guard_params = frozenset(config.guard_params)
    for fn in list(functions.values()):
        ctx = ctx_of_fn[fn.qualname]
        scanner = _CallScanner(graph, ctx, fn, guard_params)
        graph.calls[fn.qualname] = scanner.scan()
    return graph


class _CallScanner:
    """Collects the call sites of one function, flow-sensitively."""

    def __init__(
        self,
        graph: CallGraph,
        ctx: _ModuleContext,
        fn: FunctionInfo,
        guard_params: frozenset[str],
    ) -> None:
        self.graph = graph
        self.ctx = ctx
        self.fn = fn
        self.guard_params = guard_params
        self.own_guards = guard_params & {
            arg.arg
            for arg in (
                *fn.node.args.posonlyargs,
                *fn.node.args.args,
                *fn.node.args.kwonlyargs,
            )
        }
        self.sites: list[CallSite] = []
        self.env: dict[str, str] = {}
        for arg in (
            *fn.node.args.posonlyargs,
            *fn.node.args.args,
            *fn.node.args.kwonlyargs,
        ):
            resolved = self._resolve_annotation(arg.annotation)
            if resolved is not None:
                self.env[arg.arg] = resolved

    def scan(self) -> tuple[CallSite, ...]:
        self._stmts(self.fn.node.body, frozenset())
        return tuple(self.sites)

    # -- resolution helpers -------------------------------------------
    def _resolve_annotation(self, expr: ast.expr | None) -> str | None:
        for candidate in _annotation_candidates(expr):
            resolved = self.ctx.resolve_dotted(candidate)
            if resolved in self.graph.classes:
                return resolved
        return None

    def _expr_type(self, expr: ast.expr) -> str | None:
        """Project class qualname an expression evaluates to, if known."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.fn.class_qualname is not None:
                return self.fn.class_qualname
            return self.env.get(expr.id)
        if isinstance(expr, ast.Await):
            return self._expr_type(expr.value)
        if isinstance(expr, ast.Attribute):
            owner = self._expr_type(expr.value)
            if owner is not None:
                found = self._class_attr_type(owner, expr.attr)
                if found is not None:
                    return found
            dotted = _dotted_name(expr)
            if dotted is not None:
                resolved = self.ctx.resolve_dotted(dotted)
                if resolved in self.graph.classes:
                    return None  # the class object, not an instance
            return None
        if isinstance(expr, ast.Call):
            callees, external, exact = self._resolve_call_func(expr.func)
            if exact and external is not None and external in self.graph.classes:
                return external  # constructor call
            if exact and len(callees) == 1:
                info = self.graph.functions.get(callees[0])
                if info is not None:
                    return info.returns_class
            return None
        if isinstance(expr, ast.Subscript):
            owner = self._expr_type(expr.value)
            if owner is not None:
                getter = self.graph.lookup_method(owner, "__getitem__")
                if getter is not None:
                    info = self.graph.functions.get(getter)
                    if info is not None:
                        return info.returns_class
            return None
        return None

    def _class_attr_type(self, class_qualname: str, attr: str) -> str | None:
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            qual = queue.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.graph.classes.get(qual)
            if cls is None:
                continue
            found = cls.attr_types.get(attr)
            if found is not None:
                return found
            queue.extend(cls.bases)
        return None

    def _resolve_call_func(
        self, func: ast.expr
    ) -> tuple[tuple[str, ...], str | None, bool]:
        """→ (project callees, external dotted target, exact?)."""
        graph = self.graph
        if isinstance(func, ast.Name):
            resolved = self.ctx.resolve_head(func.id)
            if resolved in graph.functions:
                return (resolved,), None, True
            if resolved in graph.classes:
                ctor = graph.lookup_method(resolved, "__init__")
                return ((ctor,) if ctor else ()), resolved, True
            return (), resolved, True
        if isinstance(func, ast.Attribute):
            receiver_type = self._expr_type(func.value)
            if receiver_type is not None:
                target = graph.lookup_method(receiver_type, func.attr)
                if target is not None:
                    return (target,), None, True
                return (), f"{receiver_type}.{func.attr}", True
            dotted = _dotted_name(func)
            external: str | None = None
            if dotted is not None:
                resolved = self.ctx.resolve_dotted(dotted)
                if resolved in graph.functions:
                    return (resolved,), None, True
                if resolved in graph.classes:
                    ctor = graph.lookup_method(resolved, "__init__")
                    return ((ctor,) if ctor else ()), resolved, True
                external = resolved
            if func.attr.startswith("__") or func.attr in _FALLBACK_IGNORE:
                return (), external, False
            return graph.methods_named(func.attr), external, False
        return (), None, True

    # -- traversal ----------------------------------------------------
    def _stmts(self, body: Sequence[ast.stmt], requires: frozenset[str]) -> None:
        extra = requires
        for stmt in body:
            extra = self._stmt(stmt, extra)

    def _stmt(self, stmt: ast.stmt, requires: frozenset[str]) -> frozenset[str]:
        """Process one statement; returns the (possibly narrowed)
        guard set for the statements that follow it in the same block
        (an early ``if not guard: return`` implies the rest of the
        block requires the guard)."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: attribute its calls to the enclosing
            # function (it can only run when the parent runs).
            self._stmts(stmt.body, requires)
            return requires
        if isinstance(stmt, ast.ClassDef):
            self._stmts(stmt.body, requires)
            return requires
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, requires)
            guard = self._guard_name(stmt.test)
            negated = self._negated_guard_name(stmt.test)
            body_req = requires | {guard} if guard is not None else requires
            else_req = requires | {negated} if negated is not None else requires
            self._stmts(stmt.body, body_req)
            self._stmts(stmt.orelse, else_req)
            if negated is not None and self._terminates(stmt.body):
                return requires | {negated}
            return requires
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, requires)
            self._forget_target(stmt.target)
            self._stmts(stmt.body, requires)
            self._stmts(stmt.orelse, requires)
            return requires
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, requires)
            self._stmts(stmt.body, requires)
            self._stmts(stmt.orelse, requires)
            return requires
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr, requires)
                if item.optional_vars is not None:
                    self._forget_target(item.optional_vars)
            self._stmts(stmt.body, requires)
            return requires
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body, requires)
            for handler in stmt.handlers:
                self._stmts(handler.body, requires)
            self._stmts(stmt.orelse, requires)
            self._stmts(stmt.finalbody, requires)
            return requires
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, requires)
            inferred = self._expr_type(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if inferred is not None:
                        self.env[target.id] = inferred
                    else:
                        self.env.pop(target.id, None)
                else:
                    self._forget_target(target)
                    self._expr_store(target, requires)
            return requires
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, requires)
            if isinstance(stmt.target, ast.Name):
                resolved = self._resolve_annotation(stmt.annotation)
                if resolved is not None:
                    self.env[stmt.target.id] = resolved
                else:
                    self.env.pop(stmt.target.id, None)
            return requires
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, requires)
            return requires
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, requires)
            return requires
        if isinstance(stmt, (ast.Expr, ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, requires)
            return requires
        return requires

    def _expr_store(self, target: ast.expr, requires: frozenset[str]) -> None:
        """Scan the value parts of a non-Name assignment target."""
        for child in ast.walk(target):
            if isinstance(child, ast.Call):
                self._expr(child, requires)

    def _forget_target(self, target: ast.expr) -> None:
        for child in ast.walk(target):
            if isinstance(child, ast.Name):
                self.env.pop(child.id, None)

    def _guard_name(self, test: ast.expr) -> str | None:
        if isinstance(test, ast.Name) and test.id in self.own_guards:
            return test.id
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            # ``if guard and <more>:`` — the body still only runs with
            # the guard truthy, so it prunes the same way.
            for value in test.values:
                if isinstance(value, ast.Name) and value.id in self.own_guards:
                    return value.id
        return None

    def _negated_guard_name(self, test: ast.expr) -> str | None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._guard_name(test.operand)
        return None

    @staticmethod
    def _terminates(body: Sequence[ast.stmt]) -> bool:
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
        )

    def _expr(self, expr: ast.expr, requires: frozenset[str]) -> None:
        if isinstance(expr, ast.Call):
            callees, external, exact = self._resolve_call_func(expr.func)
            guards: list[tuple[str, str]] = []
            for keyword in expr.keywords:
                if keyword.arg is None or keyword.arg not in self.guard_params:
                    continue
                value = keyword.value
                if isinstance(value, ast.Constant) and not value.value:
                    guards.append((keyword.arg, ""))
                elif isinstance(value, ast.Name) and value.id in self.own_guards:
                    guards.append((keyword.arg, value.id))
            self.sites.append(
                CallSite(
                    lineno=expr.lineno,
                    callees=callees,
                    external=external,
                    exact=exact,
                    requires=requires,
                    guards=tuple(guards),
                )
            )
            # Receiver of a method call may itself contain calls.
            if isinstance(expr.func, ast.Attribute):
                self._expr(expr.func.value, requires)
            for arg in expr.args:
                self._expr(arg, requires)
            for keyword in expr.keywords:
                self._expr(keyword.value, requires)
            return
        if isinstance(expr, ast.Lambda):
            self._expr(expr.body, requires)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child, requires)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter, requires)
                for condition in child.ifs:
                    self._expr(condition, requires)
