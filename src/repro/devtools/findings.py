"""Lint findings and per-line suppression comments.

A :class:`Finding` is one rule violation at one source location. Its
:attr:`Finding.baseline_key` deliberately excludes the line number so a
baselined (grandfathered) finding survives unrelated edits that shift
the file — the identity is *what* is wrong and *where* (file + message),
not the exact line it currently sits on.

Suppression syntax, checked per physical line::

    value = os.environ.get("X")  # repro-lint: disable=R1
    anything_at_all()            # repro-lint: disable=all
    rng = np.random.rand()       # repro-lint: disable=R2,R4

The comment must sit on the same line the finding is reported on.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from typing import Any, Iterable, Mapping

__all__ = ["Finding", "is_suppressed", "suppressions_for"]

#: Matches the same-line marker ``repro-lint: disable=R1,R2`` (the
#: sentinel ``disable=all`` silences every rule on the line).
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Project-relative POSIX path of the offending file.
    line:
        1-based line number.
    rule:
        Rule identifier (``"R1"`` … ``"R6"``).
    message:
        Human-readable statement of the violation. Stable across
        unrelated edits (no line numbers inside) — it is part of the
        baseline identity.
    hint:
        How to fix it (or suppress it legitimately).
    """

    path: str
    line: int
    rule: str
    message: str
    hint: str = ""

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (reporters and the JSON format)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One-line text form: ``path:line: RULE message (hint)``."""
        tail = f" ({self.hint})" if self.hint else ""
        return f"{self.path}:{self.line}: {self.rule} {self.message}{tail}"


def _comment_lines(source: str) -> frozenset[int] | None:
    """1-based line numbers carrying a real ``#`` comment token.

    Tokenizing keeps suppression *examples* inside docstrings and
    string literals from registering as live suppressions. ``None``
    means the source does not tokenize (syntax errors the AST layer
    reports separately) and the caller should fall back to treating
    every line as comment-bearing.
    """
    lines: set[int] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                lines.add(token.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return None
    return frozenset(lines)


def suppressions_for(lines: Iterable[str]) -> dict[int, frozenset[str]]:
    """Map of 1-based line number → rule ids suppressed on that line.

    ``disable=all`` yields the sentinel entry ``{"all"}``. Only real
    comment tokens count — the marker inside a docstring or string
    literal (e.g. this module's own syntax examples) is inert.
    """
    stripped = [line.rstrip("\n") for line in lines]
    commented = _comment_lines("\n".join(stripped) + "\n")
    table: dict[int, frozenset[str]] = {}
    for number, line in enumerate(stripped, start=1):
        if commented is not None and number not in commented:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip() for token in match.group(1).split(",") if token.strip()
        )
        if rules:
            table[number] = rules
    return table


def is_suppressed(
    finding: Finding, suppressions: Mapping[int, frozenset[str]]
) -> bool:
    """Whether *finding* is silenced by a same-line suppression comment."""
    rules = suppressions.get(finding.line)
    if rules is None:
        return False
    return "all" in rules or finding.rule in rules
