"""The six project-invariant rules, as AST passes over one module each.

========  ==================  ====================================================
Rule id   Name                Invariant enforced
========  ==================  ====================================================
``R1``    env-boundary        ``os.environ``/``os.getenv`` only inside the
                              allowlisted env module (:mod:`repro._env`).
``R2``    determinism         No unseeded ``np.random.*`` / stdlib ``random.*``
                              calls — global-state RNG breaks bit-identical
                              reproduction.
``R3``    options-threading   Every public fit/grid/serving entry point accepts
                              ``options=`` and threads ``cache``/``trace``/
                              ``executor`` (serving accepts *only* options).
``R4``    picklability        Callables handed to an executor ``map``/``submit``
                              must be module-level (the process backend pickles
                              them).
``R5``    structure           Frozen dataclasses stay frozen (no
                              ``object.__setattr__`` escape hatch, no ``self.x =``
                              in methods) and ``__all__`` matches the module's
                              definitions.
``R6``    exception-hygiene   No bare ``except:``; no silently swallowed
                              exceptions in the fit paths.
========  ==================  ====================================================

Each rule is a stateless class with a ``check(module, config)`` method
returning :class:`~repro.devtools.findings.Finding` records. Rules are
configured through :class:`LintConfig`, whose :func:`default_config`
instance encodes this repository's invariants; tests point the same
rules at fixture trees with a custom config.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Sequence

from repro.devtools.findings import Finding

__all__ = [
    "ALL_RULES",
    "DeterminismRule",
    "EntryPointSpec",
    "EnvBoundaryRule",
    "ExceptionHygieneRule",
    "LintConfig",
    "ModuleSource",
    "OptionsThreadingRule",
    "PicklabilityRule",
    "ProtocolSpec",
    "SharedStateSpec",
    "StructureRule",
    "default_config",
]


@dataclasses.dataclass(frozen=True)
class ModuleSource:
    """One parsed module handed to every rule.

    ``relpath`` is the project-relative POSIX path (the path findings
    and the baseline use); ``tree`` is the parsed AST; ``lines`` the
    physical source lines (for suppression comments).
    """

    relpath: str
    tree: ast.Module
    lines: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class EntryPointSpec:
    """Signature contract for one public entry point (rule R3).

    ``qualname`` is a module-level function name or
    ``Class.method``; ``required`` parameters must appear in the
    signature, ``forbidden`` parameters must not (the serving layer
    takes engine configuration *only* as ``options=``).
    """

    module: str
    qualname: str
    required: frozenset[str] = frozenset()
    forbidden: frozenset[str] = frozenset()


@dataclasses.dataclass(frozen=True)
class SharedStateSpec:
    """One piece of cross-task shared state and its mutation funnels (R8).

    ``attr`` is the attribute name (matched on any ``self.<attr>`` /
    ``obj.<attr>`` mutation); ``allowed`` lists the bare method names
    permitted to mutate it (``__init__`` is always allowed).
    """

    attr: str
    allowed: frozenset[str] = frozenset()


@dataclasses.dataclass(frozen=True)
class ProtocolSpec:
    """One wire-protocol surface checked by R10.

    ``ops_const`` names a module-level tuple of op strings in
    ``module``; every op must appear as a string constant inside the
    ``dispatcher`` method, and the ``handler`` method must catch one of
    ``catch_types`` and map it through one of ``mappers``.
    """

    module: str
    ops_const: str
    dispatcher: str
    handler: str
    catch_types: frozenset[str] = frozenset({"ReproError", "ServingError"})
    mappers: frozenset[str] = frozenset({"error_code", "_error_body"})


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Project-specific knobs consumed by the rules.

    Attributes
    ----------
    env_allowlist:
        Project-relative paths allowed to read ``os.environ`` (R1).
    entry_points:
        Signature contracts checked by R3.
    threading_prefixes:
        Path prefixes whose public functions must pair any
        ``cache``/``trace``/``executor`` parameter with ``options`` (R3
        heuristic).
    fit_path_prefixes:
        Path prefixes where a no-op ``except`` body counts as a
        swallowed exception (R6).
    executor_names:
        Receiver-name fragments that identify an executor/pool for R4
        (matched case-insensitively against the last attribute
        segment).
    async_prefixes:
        Path prefixes whose ``async def`` functions are R7 roots: no
        blocking sink may be guard-reachable from them.
    blocking_sinks:
        Blocking-call registry for R7 — dotted names, bare-name
        suffixes, or ``pkg.mod.*`` prefixes (see
        :class:`repro.devtools.callgraph.CallGraph.blocking_path`).
    guard_params:
        Keyword parameters whose ``=False`` call sites prune
        guard-annotated edges during reachability (``allow_refit``).
    shared_state:
        Mutation-funnel contracts checked by R8.
    kernel_prefixes:
        Path prefixes of numeric kernel modules checked by R9.
    error_base:
        Bare class name rooting the R10 error hierarchy; every
        transitive subclass must define or inherit a ``code``.
    protocols:
        Wire-protocol surfaces checked by R10.
    """

    env_allowlist: frozenset[str] = frozenset()
    entry_points: tuple[EntryPointSpec, ...] = ()
    threading_prefixes: tuple[str, ...] = ()
    fit_path_prefixes: tuple[str, ...] = ()
    executor_names: tuple[str, ...] = ("executor", "pool")
    async_prefixes: tuple[str, ...] = ()
    blocking_sinks: tuple[str, ...] = ()
    guard_params: tuple[str, ...] = ()
    shared_state: tuple[SharedStateSpec, ...] = ()
    kernel_prefixes: tuple[str, ...] = ()
    error_base: str = ""
    protocols: tuple[ProtocolSpec, ...] = ()


def default_config() -> LintConfig:
    """The invariants of this repository."""
    fit_knobs = frozenset({"options", "engine", "cache", "trace", "executor"})
    grid = frozenset({"options", "executor", "n_workers"})
    only_options = frozenset({"engine", "cache", "trace", "executor", "n_workers"})
    return LintConfig(
        env_allowlist=frozenset({"src/repro/_env.py"}),
        entry_points=(
            EntryPointSpec(
                "src/repro/fitting/least_squares.py",
                "fit_least_squares",
                required=fit_knobs | {"n_workers"},
            ),
            EntryPointSpec(
                "src/repro/fitting/least_squares.py", "fit_many", required=grid
            ),
            EntryPointSpec(
                "src/repro/fitting/fleet.py",
                "fit_fleet",
                required=fit_knobs | {"n_workers", "chunk_size"},
            ),
            EntryPointSpec(
                "src/repro/datasets/outage.py",
                "generate_fleet",
                required=frozenset({"seed", "chunk_size"}),
            ),
            EntryPointSpec(
                "src/repro/datasets/store.py",
                "EpisodeStoreWriter.__init__",
                required=frozenset({"seed", "config"}),
            ),
            EntryPointSpec("src/repro/analysis/experiments.py", "table1", required=grid),
            EntryPointSpec("src/repro/analysis/experiments.py", "table2", required=grid),
            EntryPointSpec("src/repro/analysis/experiments.py", "table3", required=grid),
            EntryPointSpec("src/repro/analysis/experiments.py", "table4", required=grid),
            EntryPointSpec(
                "src/repro/analysis/experiments.py", "truncation_grid", required=grid
            ),
            EntryPointSpec(
                "src/repro/analysis/fleet.py", "episode_scorecard", required=grid
            ),
            EntryPointSpec(
                "src/repro/analysis/pipeline.py",
                "run_full_reproduction",
                required=grid,
            ),
            EntryPointSpec(
                "src/repro/validation/crossval.py",
                "rolling_origin",
                required=frozenset({"options"}),
            ),
            EntryPointSpec(
                "src/repro/serving/online.py",
                "OnlineForecaster.__init__",
                required=frozenset({"options"}),
                forbidden=only_options,
            ),
            EntryPointSpec(
                "src/repro/serving/session.py",
                "ForecastSession.__init__",
                required=frozenset({"options"}),
                forbidden=only_options,
            ),
            EntryPointSpec(
                "src/repro/serving/replay.py",
                "replay_forecasts",
                required=frozenset({"options"}),
                forbidden=only_options,
            ),
            EntryPointSpec(
                "src/repro/serving/server.py",
                "ForecastServer.__init__",
                forbidden=only_options,
            ),
            EntryPointSpec(
                "src/repro/serving/remediation.py",
                "RemediationLoop.__init__",
                forbidden=only_options,
            ),
            EntryPointSpec(
                "src/repro/bench/runner.py",
                "run_matrix",
                required=frozenset({"options"}),
                forbidden=only_options,
            ),
        ),
        threading_prefixes=(
            "src/repro/fitting/",
            "src/repro/analysis/",
            "src/repro/serving/",
            "src/repro/bench/",
        ),
        fit_path_prefixes=(
            "src/repro/fitting/",
            "src/repro/serving/",
            "src/repro/parallel/",
            "src/repro/validation/",
            "src/repro/analysis/",
            "src/repro/observability/",
        ),
        async_prefixes=("src/repro/serving/",),
        blocking_sinks=(
            "scipy.optimize.*",
            "repro.fitting.least_squares.fit_least_squares",
            "repro.fitting.least_squares.fit_many",
            "repro.fitting.fleet.fit_fleet",
            "repro.serving.session.ForecastSession.execute_refits",
            "repro.serving.session.ForecastSession.refit_stale",
            "repro.serving.remediation.execute_remediation",
            "repro.serving.remediation.RemediationLoop.execute",
            "repro.serving.remediation.RemediationLoop.run_cycle",
            "repro.datasets.store.EpisodeStore.iter_chunks",
            "repro.datasets.store.EpisodeStore.episode",
            "repro.datasets.store.EpisodeStoreWriter.append",
            "time.sleep",
            "open",
            "subprocess.*",
        ),
        guard_params=("allow_refit", "allow_reselect"),
        shared_state=(
            SharedStateSpec(
                "_first_fits",
                frozenset({"_ensure_first_fit", "_forget_first_fit"}),
            ),
            SharedStateSpec("_inflight_refits", frozenset({"_run_first_fit"})),
            SharedStateSpec("_forecasters", frozenset({"register", "unregister"})),
        ),
        kernel_prefixes=(
            "src/repro/fitting/batched.py",
            "src/repro/models/",
            "src/repro/distributions/",
            "src/repro/metrics/",
        ),
        error_base="ServingError",
        protocols=(
            ProtocolSpec(
                module="src/repro/serving/server.py",
                ops_const="SERVER_OPS",
                dispatcher="ForecastServer._dispatch",
                handler="ForecastServer._handle_line",
            ),
        ),
    )


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local name → full module path for every import in the module."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _resolve_call_target(func: ast.AST, imports: dict[str, str]) -> str | None:
    """Fully-qualified dotted target of a call, through import aliases."""
    dotted = _dotted_name(func)
    if dotted is None:
        return None
    head, _, tail = dotted.partition(".")
    resolved = imports.get(head)
    if resolved is None:
        return dotted
    return f"{resolved}.{tail}" if tail else resolved


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return set(names)


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """Every function in the module with a ``nested`` flag (defined
    inside another function rather than at module/class level)."""

    def walk(body: Sequence[ast.stmt], nested: bool) -> Iterator[
        tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]
    ]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, nested
                yield from walk(node.body, True)
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, nested)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                for field in ("body", "orelse", "finalbody", "handlers"):
                    children = getattr(node, field, None) or []
                    for child in children:
                        if isinstance(child, ast.ExceptHandler):
                            yield from walk(child.body, nested)
                        elif isinstance(child, ast.stmt):
                            yield from walk([child], nested)

    yield from walk(tree.body, False)


# ----------------------------------------------------------------------
# R1 — env boundary
# ----------------------------------------------------------------------
class EnvBoundaryRule:
    """``os.environ`` / ``os.getenv`` confined to the allowlisted module."""

    RULE_ID = "R1"
    NAME = "env-boundary"
    DESCRIPTION = (
        "environment reads are allowed only inside the registered env "
        "boundary module (repro._env); everything else goes through "
        "EngineOptions.resolve()"
    )

    _OS_ATTRS = frozenset({"environ", "environb", "getenv", "putenv", "unsetenv"})

    def check(self, module: ModuleSource, config: LintConfig) -> list[Finding]:
        if module.relpath in config.env_allowlist:
            return []
        imports = _import_map(module.tree)
        findings: list[Finding] = []
        hint = (
            "route the read through EngineOptions.resolve() / "
            "repro._env.read_env, or add this file to the R1 allowlist "
            "with a documented reason"
        )
        for node in ast.walk(module.tree):
            target: str | None = None
            if isinstance(node, ast.Attribute):
                dotted = _dotted_name(node)
                if dotted is not None:
                    head, _, tail = dotted.partition(".")
                    if imports.get(head, head) == "os" and tail.split(".")[0] in self._OS_ATTRS:
                        target = f"os.{tail.split('.')[0]}"
            elif isinstance(node, ast.Name) and imports.get(node.id, "") in {
                f"os.{attr}" for attr in self._OS_ATTRS
            }:
                target = imports[node.id]
            if target is not None:
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=node.lineno,
                        rule=self.RULE_ID,
                        message=f"direct environment access via {target}",
                        hint=hint,
                    )
                )
        # One finding per line: an `os.environ.get(...)` chain visits both
        # the outer and inner Attribute nodes.
        unique: dict[tuple[int, str], Finding] = {
            (f.line, f.message): f for f in findings
        }
        return sorted(unique.values())


# ----------------------------------------------------------------------
# R2 — determinism
# ----------------------------------------------------------------------
class DeterminismRule:
    """No unseeded ``np.random.*`` / stdlib ``random.*`` usage."""

    RULE_ID = "R2"
    NAME = "determinism"
    DESCRIPTION = (
        "all randomness must flow from an explicit seed; global-state "
        "RNG calls make artifacts irreproducible"
    )

    #: numpy.random attributes that are fine to *call* (they construct
    #: seeded/explicit generators rather than touching global state).
    _NP_CONSTRUCTORS = frozenset(
        {
            "default_rng",
            "Generator",
            "RandomState",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "MT19937",
            "SFC64",
        }
    )
    #: Constructors that are unseeded when called with no arguments.
    _NEEDS_SEED = frozenset({"default_rng", "RandomState", "SeedSequence", "Random"})

    def check(self, module: ModuleSource, config: LintConfig) -> list[Finding]:
        imports = _import_map(module.tree)
        findings: list[Finding] = []
        hint = "thread an explicit seed / np.random.Generator through instead"
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = _resolve_call_target(node.func, imports)
                if target is None:
                    continue
                violation = self._call_violation(target, node)
                if violation is not None:
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=node.lineno,
                            rule=self.RULE_ID,
                            message=violation,
                            hint=hint,
                        )
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module in {"random", "numpy.random"}:
                    for alias in node.names:
                        if alias.name not in self._NP_CONSTRUCTORS:
                            findings.append(
                                Finding(
                                    path=module.relpath,
                                    line=node.lineno,
                                    rule=self.RULE_ID,
                                    message=(
                                        f"import of global-state RNG symbol "
                                        f"{node.module}.{alias.name}"
                                    ),
                                    hint=hint,
                                )
                            )
        return findings

    def _call_violation(self, target: str, call: ast.Call) -> str | None:
        parts = target.split(".")
        if parts[:2] == ["numpy", "random"] and len(parts) == 3:
            fn = parts[2]
            if fn not in self._NP_CONSTRUCTORS:
                return f"global-state RNG call numpy.random.{fn}()"
            if fn in self._NEEDS_SEED and not call.args and not call.keywords:
                return f"unseeded numpy.random.{fn}() call"
            return None
        if parts[0] == "random" and len(parts) == 2:
            fn = parts[1]
            if fn == "Random":
                if not call.args and not call.keywords:
                    return "unseeded random.Random() call"
                return None
            if fn == "SystemRandom":
                return None  # explicitly non-deterministic by contract
            return f"global-state RNG call random.{fn}()"
        return None


# ----------------------------------------------------------------------
# R3 — options threading
# ----------------------------------------------------------------------
class OptionsThreadingRule:
    """Entry points accept ``options=`` and thread the engine knobs."""

    RULE_ID = "R3"
    NAME = "options-threading"
    DESCRIPTION = (
        "public fit/grid/serving entry points must accept options= and "
        "forward cache/trace/executor; serving entry points accept "
        "engine configuration only as options"
    )

    _ENGINE_KNOBS = frozenset({"engine", "cache", "trace", "executor"})

    def check(self, module: ModuleSource, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        specs = [s for s in config.entry_points if s.module == module.relpath]
        functions = self._qualified_functions(module.tree)
        for spec in specs:
            node = functions.get(spec.qualname)
            if node is None:
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=1,
                        rule=self.RULE_ID,
                        message=(
                            f"expected entry point {spec.qualname} not found"
                        ),
                        hint="update the R3 entry-point registry if it moved",
                    )
                )
                continue
            params = _function_params(node)
            missing = sorted(spec.required - params)
            if missing:
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=node.lineno,
                        rule=self.RULE_ID,
                        message=(
                            f"entry point {spec.qualname} is missing required "
                            f"parameter(s): {', '.join(missing)}"
                        ),
                        hint="thread the engine knobs (options=) through",
                    )
                )
            stray = sorted(spec.forbidden & params)
            if stray:
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=node.lineno,
                        rule=self.RULE_ID,
                        message=(
                            f"entry point {spec.qualname} must take engine "
                            f"configuration only via options=, not: "
                            f"{', '.join(stray)}"
                        ),
                        hint="fold the knob into the EngineOptions bundle",
                    )
                )
        if any(module.relpath.startswith(p) for p in config.threading_prefixes):
            covered = {spec.qualname for spec in specs}
            for node in module.tree.body:
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if node.name.startswith("_") or node.name in covered:
                    continue
                params = _function_params(node)
                if params & self._ENGINE_KNOBS and "options" not in params:
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=node.lineno,
                            rule=self.RULE_ID,
                            message=(
                                f"public function {node.name} takes engine "
                                "knobs but no options= parameter"
                            ),
                            hint="accept options= and merge via override()",
                        )
                    )
        return findings

    @staticmethod
    def _qualified_functions(
        tree: ast.Module,
    ) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
        table: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                table[node.name] = node
            elif isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        table[f"{node.name}.{child.name}"] = child
        return table


# ----------------------------------------------------------------------
# R4 — picklability
# ----------------------------------------------------------------------
class PicklabilityRule:
    """Executor-submitted callables must be module-level functions."""

    RULE_ID = "R4"
    NAME = "picklability"
    DESCRIPTION = (
        "work units handed to an executor map()/submit() are pickled by "
        "the process backend; lambdas and nested functions silently "
        "degrade to serial execution"
    )

    def check(self, module: ModuleSource, config: LintConfig) -> list[Finding]:
        nested_names = {
            node.name for node, nested in _iter_functions(module.tree) if nested
        }
        findings: list[Finding] = []
        hint = "hoist the work function to module level (see parallel/executor.py)"
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in {
                "map",
                "submit",
            }:
                continue
            if not self._is_executor_receiver(func.value, config):
                continue
            if not node.args:
                continue
            work = node.args[0]
            problem: str | None = None
            if isinstance(work, ast.Lambda):
                problem = "a lambda"
            elif isinstance(work, ast.Name) and work.id in nested_names:
                problem = f"nested function {work.id}"
            if problem is not None:
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=node.lineno,
                        rule=self.RULE_ID,
                        message=(
                            f"{problem} passed to executor .{func.attr}() "
                            "is not picklable"
                        ),
                        hint=hint,
                    )
                )
        return findings

    @staticmethod
    def _is_executor_receiver(receiver: ast.AST, config: LintConfig) -> bool:
        if isinstance(receiver, ast.Call):
            dotted = _dotted_name(receiver.func)
            return dotted is not None and dotted.split(".")[-1] == "get_executor"
        dotted = _dotted_name(receiver)
        if dotted is None:
            return False
        last = dotted.split(".")[-1].lower()
        return any(fragment in last for fragment in config.executor_names)


# ----------------------------------------------------------------------
# R5 — structure (frozen dataclasses + __all__ consistency)
# ----------------------------------------------------------------------
class StructureRule:
    """Frozen dataclasses stay frozen; ``__all__`` matches definitions."""

    RULE_ID = "R5"
    NAME = "structure"
    DESCRIPTION = (
        "no object.__setattr__ escape hatches or self-mutation inside "
        "frozen dataclasses; every __all__ entry exists and every "
        "public class/function is exported"
    )

    def check(self, module: ModuleSource, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_frozen(module))
        findings.extend(self._check_all(module))
        return findings

    def _check_frozen(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted in {"object.__setattr__", "super().__setattr__"}:
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=node.lineno,
                            rule=self.RULE_ID,
                            message=(
                                "object.__setattr__ escape hatch defeats the "
                                "frozen-dataclass contract"
                            ),
                            hint=(
                                "construct a new instance (dataclasses.replace) "
                                "instead of mutating"
                            ),
                        )
                    )
            elif isinstance(node, ast.ClassDef) and self._is_frozen_dataclass(node):
                findings.extend(self._check_frozen_body(module, node))
        return findings

    @staticmethod
    def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                dotted = _dotted_name(decorator.func)
                if dotted in {"dataclass", "dataclasses.dataclass"}:
                    for keyword in decorator.keywords:
                        if (
                            keyword.arg == "frozen"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            return True
        return False

    def _check_frozen_body(
        self, module: ModuleSource, cls: ast.ClassDef
    ) -> list[Finding]:
        findings: list[Finding] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(method):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        findings.append(
                            Finding(
                                path=module.relpath,
                                line=node.lineno,
                                rule=self.RULE_ID,
                                message=(
                                    f"assignment to self.{target.attr} inside "
                                    f"frozen dataclass {cls.name} raises at "
                                    "runtime"
                                ),
                                hint="frozen dataclasses are immutable",
                            )
                        )
        return findings

    def _check_all(self, module: ModuleSource) -> list[Finding]:
        exported = self._exported_names(module.tree)
        if exported is None:
            return []
        names, all_line = exported
        defined = self._defined_names(module.tree)
        findings: list[Finding] = []
        for name in sorted(set(names) - defined):
            findings.append(
                Finding(
                    path=module.relpath,
                    line=all_line,
                    rule=self.RULE_ID,
                    message=f"__all__ exports undefined name {name}",
                    hint="remove it or define/import it",
                )
            )
        for node in module.tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and not node.name.startswith("_")
                and node.name not in names
            ):
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=node.lineno,
                        rule=self.RULE_ID,
                        message=(
                            f"public definition {node.name} is missing from "
                            "__all__"
                        ),
                        hint="export it or rename it with a leading underscore",
                    )
                )
        return findings

    @staticmethod
    def _exported_names(tree: ast.Module) -> tuple[list[str], int] | None:
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        if isinstance(node.value, (ast.List, ast.Tuple)):
                            names = [
                                element.value
                                for element in node.value.elts
                                if isinstance(element, ast.Constant)
                                and isinstance(element.value, str)
                            ]
                            return names, node.lineno
        return None

    @staticmethod
    def _defined_names(tree: ast.Module) -> set[str]:
        defined: set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    defined.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    defined.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    defined.add(alias.asname or alias.name)
            elif isinstance(node, (ast.If, ast.Try)):
                # Names defined under TYPE_CHECKING / version guards.
                for child in ast.walk(node):
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        defined.add(child.name)
                    elif isinstance(child, ast.ImportFrom):
                        for alias in child.names:
                            defined.add(alias.asname or alias.name)
        return defined


# ----------------------------------------------------------------------
# R6 — exception hygiene
# ----------------------------------------------------------------------
class ExceptionHygieneRule:
    """No bare ``except:``; no silent swallowing in fit paths."""

    RULE_ID = "R6"
    NAME = "exception-hygiene"
    DESCRIPTION = (
        "bare except: hides SystemExit/KeyboardInterrupt; a no-op "
        "handler in a fit path hides real convergence failures"
    )

    def check(self, module: ModuleSource, config: LintConfig) -> list[Finding]:
        in_fit_path = any(
            module.relpath.startswith(p) for p in config.fit_path_prefixes
        )
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=node.lineno,
                        rule=self.RULE_ID,
                        message="bare except: catches SystemExit and "
                        "KeyboardInterrupt",
                        hint="catch Exception (or something narrower)",
                    )
                )
            elif in_fit_path and self._is_noop_body(node.body):
                caught = _dotted_name(node.type) or "exception"
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=node.lineno,
                        rule=self.RULE_ID,
                        message=(
                            f"swallowed {caught} in a fit path (handler body "
                            "is a no-op)"
                        ),
                        hint="log the failure or record it in the result",
                    )
                )
        return findings

    @staticmethod
    def _is_noop_body(body: Sequence[ast.stmt]) -> bool:
        for statement in body:
            if isinstance(statement, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Constant
            ):
                continue  # docstring / ellipsis
            return False
        return True


#: Every rule, in id order; the orchestrator instantiates these.
ALL_RULES: tuple[type, ...] = (
    EnvBoundaryRule,
    DeterminismRule,
    OptionsThreadingRule,
    PicklabilityRule,
    StructureRule,
    ExceptionHygieneRule,
)
