"""Automatic model selection with shape gating.

The paper's decision-maker guidance is qualitative ("model selection is
ultimately a subjective choice"). This module operationalizes it: fit a
candidate set, rank by an information criterion or held-out error, and
— optionally — use the curve-shape classifier to *extend* the candidate
set with the models each shape actually needs (segmented bathtubs for
W, partial-degradation mixtures for L), implementing the paper's
observation that shape should inform model choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.curve import ResilienceCurve
from repro.core.shapes import CurveShape, classify_shape
from repro.exceptions import MetricError
from repro.models.registry import make_model
from repro.validation.crossval import PredictiveEvaluation, evaluate_predictive
from repro.validation.gof import aic, bic

__all__ = ["ModelRecommendation", "recommend_model", "DEFAULT_CANDIDATES"]

#: The paper's six families.
DEFAULT_CANDIDATES: tuple[str, ...] = (
    "quadratic",
    "competing_risks",
    "exp-exp",
    "wei-exp",
    "exp-wei",
    "wei-wei",
)

#: Extra candidates unlocked per shape class (the extensions of
#: DESIGN.md §5 targeting the paper's failure cases).
_SHAPE_EXTENSIONS: dict[CurveShape, tuple[str, ...]] = {
    CurveShape.W: ("segmented", "segmented(quadratic)"),
    CurveShape.L: ("partial-wei-exp", "partial-wei-wei"),
    CurveShape.K: ("partial-wei-exp", "partial-wei-wei"),
}

#: Criteria: name -> (higher_is_better, scorer).
_CRITERIA = {
    "aic": False,
    "bic": False,
    "pmse": False,
    "sse": False,
    "r2_adjusted": True,
}


@dataclass
class ModelRecommendation:
    """Outcome of a selection run.

    Attributes
    ----------
    best_name:
        Winning model name under the criterion.
    shape:
        Classified shape of the curve (None when gating disabled).
    criterion:
        The criterion used.
    scores:
        Model name → criterion value (sorted best-first).
    evaluations:
        Model name → full :class:`PredictiveEvaluation`.
    failed:
        Candidates whose fit did not converge.
    """

    best_name: str
    shape: CurveShape | None
    criterion: str
    scores: dict[str, float]
    evaluations: dict[str, PredictiveEvaluation] = field(repr=False, default_factory=dict)
    failed: list[str] = field(default_factory=list)

    @property
    def best(self) -> PredictiveEvaluation:
        """The winning evaluation."""
        return self.evaluations[self.best_name]


def _score(evaluation: PredictiveEvaluation, criterion: str) -> float:
    if criterion in ("pmse", "sse", "r2_adjusted"):
        return float(getattr(evaluation.measures, criterion))
    train = evaluation.train
    predictions = evaluation.model.predict(train.times)
    scorer = aic if criterion == "aic" else bic
    return scorer(train.performance, predictions, evaluation.model.n_params)


def recommend_model(
    curve: ResilienceCurve,
    *,
    candidates: tuple[str, ...] | None = None,
    criterion: str = "aic",
    shape_gate: bool = True,
    train_fraction: float = 0.9,
    **fit_kwargs: object,
) -> ModelRecommendation:
    """Fit candidates to *curve* and recommend the best.

    Parameters
    ----------
    curve:
        The curve to model.
    candidates:
        Model names to try; defaults to the paper's six families.
    criterion:
        ``"aic"`` (default), ``"bic"``, ``"pmse"``, ``"sse"``, or
        ``"r2_adjusted"``. AIC/BIC are computed on the training window;
        PMSE on the held-out suffix.
    shape_gate:
        When true, classify the curve and append the shape-specific
        extension models (segmented for W, partial mixtures for L/K).
    train_fraction:
        Paper-protocol fitting fraction.

    Raises
    ------
    MetricError
        On an unknown criterion, or when every candidate fails.
    """
    if criterion not in _CRITERIA:
        known = ", ".join(sorted(_CRITERIA))
        raise MetricError(f"unknown criterion {criterion!r}; known: {known}")

    names = list(candidates if candidates is not None else DEFAULT_CANDIDATES)
    shape: CurveShape | None = None
    if shape_gate:
        shape = classify_shape(curve)
        for extra in _SHAPE_EXTENSIONS.get(shape, ()):
            if extra not in names:
                names.append(extra)

    evaluations: dict[str, PredictiveEvaluation] = {}
    scores: dict[str, float] = {}
    failed: list[str] = []
    for name in names:
        try:
            evaluation = evaluate_predictive(
                make_model(name), curve, train_fraction=train_fraction, **fit_kwargs
            )
        except Exception:
            failed.append(name)
            continue
        evaluations[name] = evaluation
        scores[name] = _score(evaluation, criterion)

    if not scores:
        raise MetricError(f"every candidate failed on curve {curve.name or '<unnamed>'}")

    higher_better = _CRITERIA[criterion]
    ordered = dict(
        sorted(scores.items(), key=lambda item: item[1], reverse=higher_better)
    )
    best_name = next(iter(ordered))
    return ModelRecommendation(
        best_name=best_name,
        shape=shape,
        criterion=criterion,
        scores=ordered,
        evaluations=evaluations,
        failed=failed,
    )
