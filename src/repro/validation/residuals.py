"""Residual diagnostics for fitted resilience models.

The Eq. (12–13) confidence band assumes i.i.d. Gaussian residuals.
Resilience curves are time series, so that assumption deserves
checking: systematic misfit (the W-shape failure mode) shows up as
strongly autocorrelated residuals long before it is visible in SSE.
This module provides the standard checks:

* **Durbin-Watson** statistic for lag-1 autocorrelation,
* **Ljung-Box** portmanteau test across several lags,
* **Jarque-Bera** normality test, and
* a **runs test** on residual signs,

bundled into a :class:`ResidualDiagnostics` verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro._typing import ArrayLike
from repro.exceptions import MetricError
from repro.fitting.result import FitResult
from repro.utils.numerics import as_float_array

__all__ = [
    "durbin_watson",
    "ljung_box",
    "jarque_bera",
    "runs_test",
    "ResidualDiagnostics",
    "diagnose_residuals",
]


def durbin_watson(residuals: ArrayLike) -> float:
    """Durbin-Watson statistic: ≈2 for uncorrelated residuals, →0 for
    strong positive lag-1 autocorrelation, →4 for negative."""
    r = as_float_array(residuals, "residuals")
    if r.size < 2:
        raise MetricError("Durbin-Watson needs at least two residuals")
    denom = float(np.dot(r, r))
    if denom == 0.0:
        raise MetricError("Durbin-Watson undefined for all-zero residuals")
    return float(np.sum(np.diff(r) ** 2)) / denom


def ljung_box(residuals: ArrayLike, lags: int = 10) -> tuple[float, float]:
    """Ljung-Box Q statistic and p-value for autocorrelation up to *lags*.

    Small p-values reject the "white noise" hypothesis.
    """
    r = as_float_array(residuals, "residuals")
    n = r.size
    if lags < 1:
        raise MetricError(f"lags must be >= 1, got {lags}")
    if n <= lags + 1:
        raise MetricError(f"need more than lags+1={lags + 1} residuals, got {n}")
    centered = r - r.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        raise MetricError("Ljung-Box undefined for constant residuals")
    q = 0.0
    for k in range(1, lags + 1):
        rho_k = float(np.dot(centered[:-k], centered[k:])) / denom
        q += rho_k * rho_k / (n - k)
    q *= n * (n + 2.0)
    p_value = float(stats.chi2.sf(q, df=lags))
    return float(q), p_value


def jarque_bera(residuals: ArrayLike) -> tuple[float, float]:
    """Jarque-Bera statistic and p-value for residual normality."""
    r = as_float_array(residuals, "residuals")
    if r.size < 8:
        raise MetricError("Jarque-Bera needs at least eight residuals")
    statistic, p_value = stats.jarque_bera(r)
    return float(statistic), float(p_value)


def runs_test(residuals: ArrayLike) -> tuple[int, float]:
    """Wald-Wolfowitz runs test on residual signs.

    Returns the observed number of sign runs and a two-sided p-value
    under the randomness null. Too few runs ⇒ the model is
    systematically above/below the data in stretches (lack of fit).
    """
    r = as_float_array(residuals, "residuals")
    signs = np.sign(r[r != 0.0])
    n = signs.size
    if n < 8:
        raise MetricError("runs test needs at least eight nonzero residuals")
    n_pos = int(np.sum(signs > 0))
    n_neg = n - n_pos
    if n_pos == 0 or n_neg == 0:
        return 1, 0.0  # all one sign: maximal lack of fit
    runs = 1 + int(np.sum(signs[1:] != signs[:-1]))
    mean = 1.0 + 2.0 * n_pos * n_neg / n
    variance = (2.0 * n_pos * n_neg * (2.0 * n_pos * n_neg - n)) / (
        n * n * (n - 1.0)
    )
    if variance <= 0.0:
        raise MetricError("runs test variance degenerate")
    z = (runs - mean) / math.sqrt(variance)
    p_value = 2.0 * float(stats.norm.sf(abs(z)))
    return runs, p_value


@dataclass(frozen=True)
class ResidualDiagnostics:
    """Bundle of residual checks with an overall verdict.

    ``white_noise_ok`` is the conjunction of the individual tests at
    the chosen significance level — when it is False, the Eq. (13)
    band's nominal coverage should not be trusted.
    """

    durbin_watson: float
    ljung_box_p: float
    jarque_bera_p: float
    runs_p: float
    significance: float

    @property
    def autocorrelation_ok(self) -> bool:
        return self.ljung_box_p >= self.significance

    @property
    def normality_ok(self) -> bool:
        return self.jarque_bera_p >= self.significance

    @property
    def randomness_ok(self) -> bool:
        return self.runs_p >= self.significance

    @property
    def white_noise_ok(self) -> bool:
        return self.autocorrelation_ok and self.normality_ok and self.randomness_ok

    def summary(self) -> str:
        """One-line human verdict."""
        flags = []
        if not self.autocorrelation_ok:
            flags.append("autocorrelated")
        if not self.normality_ok:
            flags.append("non-normal")
        if not self.randomness_ok:
            flags.append("non-random runs")
        if not flags:
            return "residuals consistent with white noise"
        return "residual problems: " + ", ".join(flags)


def diagnose_residuals(
    fit: FitResult, *, lags: int = 10, significance: float = 0.05
) -> ResidualDiagnostics:
    """Run the full diagnostic battery on a fit's training residuals."""
    if not 0.0 < significance < 1.0:
        raise MetricError(f"significance must lie in (0, 1), got {significance}")
    residuals = fit.residuals()
    lags = min(lags, len(residuals) // 3)
    _, lb_p = ljung_box(residuals, lags=max(lags, 1))
    _, jb_p = jarque_bera(residuals)
    _, runs_p = runs_test(residuals)
    return ResidualDiagnostics(
        durbin_watson=durbin_watson(residuals),
        ljung_box_p=lb_p,
        jarque_bera_p=jb_p,
        runs_p=runs_p,
        significance=significance,
    )
