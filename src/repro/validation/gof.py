"""Goodness-of-fit measures — Section III-B.1 of the paper.

The paper reports SSE (Eq. 9), PMSE on held-out observations (Eq. 10),
and the adjusted coefficient of determination (Eq. 11). RMSE, MAE,
MAPE, AIC, and BIC are provided as standard extensions for model
selection beyond the paper's tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._typing import ArrayLike
from repro.exceptions import MetricError
from repro.utils.numerics import as_float_array

__all__ = [
    "sse",
    "pmse",
    "r_squared",
    "adjusted_r_squared",
    "rmse",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "aic",
    "bic",
    "GoodnessOfFit",
]


def _paired(actual: ArrayLike, predicted: ArrayLike) -> tuple[np.ndarray, np.ndarray]:
    a = as_float_array(actual, "actual")
    p = as_float_array(predicted, "predicted")
    if a.size != p.size:
        raise MetricError(f"actual and predicted length mismatch: {a.size} vs {p.size}")
    if a.size == 0:
        raise MetricError("cannot compute a measure on empty arrays")
    return a, p


def sse(actual: ArrayLike, predicted: ArrayLike) -> float:
    """Sum of squared errors ``Σ (R(tᵢ) − P(tᵢ))²`` — Eq. (9)."""
    a, p = _paired(actual, predicted)
    residuals = a - p
    return float(np.dot(residuals, residuals))


def pmse(actual_heldout: ArrayLike, predicted_heldout: ArrayLike) -> float:
    """Predictive mean square error — Eq. (10).

    The mean squared prediction residual over the ℓ observations *not*
    used for fitting; callers pass only the held-out suffix.
    """
    a, p = _paired(actual_heldout, predicted_heldout)
    return sse(a, p) / a.size


def r_squared(actual: ArrayLike, predicted: ArrayLike) -> float:
    """Plain coefficient of determination ``(SSY − SSE)/SSY``.

    Negative values mean the model explains less variance than the
    naive mean predictor — the paper reports exactly this for the
    quadratic model on the W-shaped 1980 data.
    """
    a, p = _paired(actual, predicted)
    ssy = float(np.sum((a - a.mean()) ** 2))
    if ssy == 0.0:
        raise MetricError("SSY is zero: actual values are constant")
    return 1.0 - sse(a, p) / ssy


def adjusted_r_squared(actual: ArrayLike, predicted: ArrayLike, n_params: int) -> float:
    """Adjusted coefficient of determination — Eq. (11).

    ``r²adj = 1 − (1 − r²)·(n − 1)/(n − m − 1)`` with *m* fitted
    parameters, penalizing model complexity.
    """
    a, _ = _paired(actual, predicted)
    n = a.size
    if n_params < 0:
        raise MetricError(f"n_params must be >= 0, got {n_params}")
    dof = n - n_params - 1
    if dof <= 0:
        raise MetricError(
            f"adjusted R² undefined: n={n} observations, m={n_params} parameters"
        )
    return 1.0 - (1.0 - r_squared(actual, predicted)) * (n - 1) / dof


def rmse(actual: ArrayLike, predicted: ArrayLike) -> float:
    """Root mean squared error."""
    a, _ = _paired(actual, predicted)
    return math.sqrt(sse(actual, predicted) / a.size)


def mean_absolute_error(actual: ArrayLike, predicted: ArrayLike) -> float:
    """Mean absolute error."""
    a, p = _paired(actual, predicted)
    return float(np.mean(np.abs(a - p)))


def mean_absolute_percentage_error(actual: ArrayLike, predicted: ArrayLike) -> float:
    """Mean absolute percentage error (fraction, not percent).

    Raises
    ------
    MetricError
        If any actual value is zero (undefined percentage).
    """
    a, p = _paired(actual, predicted)
    if np.any(a == 0.0):
        raise MetricError("MAPE undefined: actual contains zeros")
    return float(np.mean(np.abs((a - p) / a)))


def _gaussian_log_likelihood(actual: ArrayLike, predicted: ArrayLike) -> float:
    a, _ = _paired(actual, predicted)
    n = a.size
    mse = sse(actual, predicted) / n
    if mse <= 0.0:
        raise MetricError("log-likelihood undefined: zero residual variance")
    return -0.5 * n * (math.log(2.0 * math.pi * mse) + 1.0)


def aic(actual: ArrayLike, predicted: ArrayLike, n_params: int) -> float:
    """Akaike information criterion under Gaussian residuals."""
    return 2.0 * n_params - 2.0 * _gaussian_log_likelihood(actual, predicted)


def bic(actual: ArrayLike, predicted: ArrayLike, n_params: int) -> float:
    """Bayesian information criterion under Gaussian residuals."""
    a, _ = _paired(actual, predicted)
    return n_params * math.log(a.size) - 2.0 * _gaussian_log_likelihood(actual, predicted)


@dataclass(frozen=True)
class GoodnessOfFit:
    """Bundle of the paper's measures for one model on one dataset.

    Mirrors one block of Table I / Table III: SSE and r²adj on the
    fitting window, PMSE on the held-out window, and the empirical
    coverage (attached by the caller after computing the confidence
    band).
    """

    sse: float
    pmse: float
    r2_adjusted: float
    empirical_coverage: float

    def as_row(self) -> tuple[float, float, float, float]:
        """Values in the paper's row order (SSE, PMSE, r²adj, EC)."""
        return (self.sse, self.pmse, self.r2_adjusted, self.empirical_coverage)
