"""Train/test evaluation protocols.

:func:`evaluate_predictive` implements the paper's protocol: fit on the
first ``n − ℓ`` observations, predict the remaining ℓ, and report SSE,
PMSE, adjusted R², and the empirical coverage of the Eq. (13) band over
the full curve. :func:`rolling_origin` generalizes it to a sweep of
training-set sizes (an extension used by the ablation benches).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.core.curve import ResilienceCurve
from repro.exceptions import MetricError
from repro.fitting.least_squares import fit_least_squares
from repro.fitting.options import (
    DEFAULT_ENGINE_OPTIONS,
    DEPRECATED_ENGINE_KWARGS,
    EngineOptions,
    split_engine_kwargs,
)
from repro.fitting.result import FitResult
from repro.models.base import ResilienceModel
from repro.validation.gof import GoodnessOfFit, adjusted_r_squared, pmse
from repro.validation.intervals import ConfidenceBand, confidence_band

__all__ = ["PredictiveEvaluation", "evaluate_predictive", "rolling_origin"]

logger = logging.getLogger("repro.validation")


@dataclass(frozen=True)
class PredictiveEvaluation:
    """Everything produced by one train/predict/validate pass.

    Attributes
    ----------
    fit:
        The training-window fit.
    train, test:
        The two halves of the split (test keeps original time stamps).
    measures:
        The paper's four measures (SSE on train, PMSE on test, r²adj on
        train, EC over the whole curve).
    band:
        The Eq. (13) confidence band evaluated over the *full* curve.
    """

    fit: FitResult
    train: ResilienceCurve
    test: ResilienceCurve
    measures: GoodnessOfFit
    band: ConfidenceBand

    @property
    def model(self) -> ResilienceModel:
        """The bound, fitted model."""
        return self.fit.model

    @property
    def split_time(self) -> float:
        """First held-out time stamp (t_{n−ℓ+1} in the paper)."""
        return float(self.test.times[0])


def evaluate_predictive(
    family: ResilienceModel,
    curve: ResilienceCurve,
    *,
    train_fraction: float = 0.9,
    confidence: float = 0.95,
    options: EngineOptions | None = None,
    **fit_kwargs: object,
) -> PredictiveEvaluation:
    """Run the paper's fit/predict/validate protocol on one curve.

    Parameters
    ----------
    family:
        Unbound model family.
    curve:
        Full empirical curve.
    train_fraction:
        Fraction used for fitting (the paper uses 90%).
    confidence:
        Level of the Eq. (13) band (the paper uses 95%).
    options:
        :class:`~repro.fitting.options.EngineOptions` bundle for the
        training fit. Engine plumbing passed as loose *fit_kwargs*
        (``cache=``/``trace=``/``executor=``/``n_workers=``) is
        deprecated: it still works, but draws a ``DeprecationWarning``
        and is folded into this bundle.
    fit_kwargs:
        Passed through to :func:`~repro.fitting.fit_least_squares`.
    """
    options, fit_kwargs = split_engine_kwargs(
        "evaluate_predictive", options, fit_kwargs
    )
    train, test = curve.train_test_split(train_fraction)
    fit = fit_least_squares(family, train, options=options, **fit_kwargs)  # type: ignore[arg-type]

    train_pred = fit.predict(train.times)
    test_pred = fit.predict(test.times)
    full_pred = fit.predict(curve.times)

    band = confidence_band(full_pred, fit.sse, len(train), confidence=confidence)
    measures = GoodnessOfFit(
        sse=fit.sse,
        pmse=pmse(test.performance, test_pred),
        r2_adjusted=adjusted_r_squared(
            train.performance, train_pred, fit.model.n_params
        ),
        empirical_coverage=band.coverage_of(curve.performance),
    )
    return PredictiveEvaluation(fit=fit, train=train, test=test, measures=measures, band=band)


def rolling_origin(
    family: ResilienceModel,
    curve: ResilienceCurve,
    *,
    min_train: int = 12,
    step: int = 6,
    warm_start: bool = True,
    warm_n_random_starts: int = 2,
    options: EngineOptions | None = None,
    **fit_kwargs: object,
) -> list[tuple[int, float]]:
    """PMSE as the training origin rolls forward.

    Fits on the first ``k`` observations for ``k = min_train,
    min_train + step, …`` and reports ``(k, PMSE on the remainder)``
    pairs. Origins whose fit fails to converge are skipped.

    With *warm_start* (the default), each origin after the first injects
    the previous origin's optimum as an extra start and shrinks the
    random-start budget to *warm_n_random_starts*: consecutive origins
    differ by a few observations, so the previous optimum is already in
    the right basin and the full multi-start sweep is wasted effort.
    Pass ``warm_start=False`` to make every origin independent.

    An ``options=`` :class:`~repro.fitting.options.EngineOptions`
    bundle fills in fit kwargs not given explicitly; like an explicit
    ``n_random_starts=`` kwarg, a non-default ``options.n_random_starts``
    disables the warm budget shrink (the caller asked for that budget).
    Loose ``cache=``/``trace=``/``executor=``/``n_workers=`` in
    *fit_kwargs* are deprecated (they still work, with a
    ``DeprecationWarning``) — put them in the bundle.
    """
    options, fit_kwargs = split_engine_kwargs("rolling_origin", options, fit_kwargs)
    if options is not None:
        # The origin loop is inherently sequential (each fit warm-starts
        # the next), so every options field — including executor, which
        # here parallelizes the multi-starts *within* each fit — flows
        # into the per-fit call. Science knobs merge as loose kwargs
        # (so the warm-shrink ``setdefault`` below still defers to a
        # non-default ``options.n_random_starts``); the plumbing rides
        # in a per-fit ``options=`` bundle.
        science = {
            name: value
            for name, value in options.to_kwargs().items()
            if name not in DEPRECATED_ENGINE_KWARGS
        }
        fit_kwargs = {**science, **fit_kwargs}
        fit_kwargs["options"] = DEFAULT_ENGINE_OPTIONS.override(
            cache=options.cache,
            trace=options.trace,
            executor=options.executor,
            n_workers=options.n_workers,
        )
    if min_train <= family.n_params:
        raise MetricError(
            f"min_train={min_train} must exceed the parameter count "
            f"{family.n_params}"
        )
    if step < 1:
        raise MetricError(f"step must be >= 1, got {step}")
    results: list[tuple[int, float]] = []
    previous_optimum: tuple[float, ...] | None = None
    for k in range(min_train, len(curve) - 1, step):
        train = curve.head(k)
        kwargs = dict(fit_kwargs)
        if warm_start and previous_optimum is not None:
            kwargs.setdefault("extra_starts", (previous_optimum,))
            kwargs.setdefault("n_random_starts", warm_n_random_starts)
        try:
            fit = fit_least_squares(family, train, **kwargs)  # type: ignore[arg-type]
        except Exception as exc:
            logger.debug("rolling origin k=%d skipped: %s", k, exc)
            continue
        previous_optimum = fit.model.params
        heldout_times = curve.times[k:]
        heldout_perf = curve.performance[k:]
        results.append((k, pmse(heldout_perf, fit.predict(heldout_times))))
    return results
