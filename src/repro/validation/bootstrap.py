"""Residual-bootstrap uncertainty for fitted resilience models.

A nonparametric companion to the asymptotic machinery in
:mod:`repro.fitting.uncertainty`: resample the fit's residuals with
replacement, rebuild synthetic curves around the fitted predictions,
refit, and read uncertainty off the ensemble of refits. More expensive
but free of the Gaussian/linearization assumptions — useful exactly
where the paper's Eq. (13) band is most questionable (small n,
near-boundary parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.core.curve import ResilienceCurve
from repro.exceptions import ConvergenceError, FitError
from repro.fitting.least_squares import fit_least_squares
from repro.fitting.result import FitResult
from repro.validation.intervals import ConfidenceBand

__all__ = ["BootstrapResult", "residual_bootstrap"]


@dataclass(frozen=True)
class BootstrapResult:
    """Ensemble of bootstrap refits.

    Attributes
    ----------
    parameter_samples:
        Array of shape ``(n_successful, n_params)``.
    n_requested, n_failed:
        Replication bookkeeping (failed refits are dropped).
    """

    fit: FitResult
    parameter_samples: FloatArray
    n_requested: int
    n_failed: int

    @property
    def n_successful(self) -> int:
        return int(self.parameter_samples.shape[0])

    def parameter_interval(
        self, name: str, confidence: float = 0.95
    ) -> tuple[float, float]:
        """Percentile CI for one parameter."""
        names = self.fit.model.param_names
        if name not in names:
            raise FitError(f"unknown parameter {name!r}; known: {', '.join(names)}")
        column = self.parameter_samples[:, names.index(name)]
        alpha = 1.0 - confidence
        return (
            float(np.quantile(column, alpha / 2.0)),
            float(np.quantile(column, 1.0 - alpha / 2.0)),
        )

    def prediction_band(
        self, times: ArrayLike, confidence: float = 0.95
    ) -> ConfidenceBand:
        """Pointwise percentile band of the refit predictions."""
        t = np.asarray(times, dtype=np.float64)
        family = self.fit.model
        predictions = np.stack(
            [family.evaluate(t, sample) for sample in self.parameter_samples]
        )
        alpha = 1.0 - confidence
        lower = np.quantile(predictions, alpha / 2.0, axis=0)
        upper = np.quantile(predictions, 1.0 - alpha / 2.0, axis=0)
        center = family.evaluate(t, family.params)
        sigma = float(np.sqrt(self.fit.sse / max(len(self.fit.curve) - 2, 1)))
        return ConfidenceBand(
            center=center, lower=lower, upper=upper,
            confidence=confidence, sigma=sigma,
        )


def residual_bootstrap(
    fit: FitResult,
    *,
    n_replications: int = 200,
    seed: int = 0,
    max_failure_fraction: float = 0.25,
    **fit_kwargs: object,
) -> BootstrapResult:
    """Residual bootstrap around a least-squares fit.

    Each replication draws residuals with replacement, adds them to the
    fitted predictions, and refits the same family (seeding the
    optimizer at the original optimum for speed and stability).

    Raises
    ------
    FitError
        If *n_replications* < 10 or too many refits fail.
    """
    if n_replications < 10:
        raise FitError(f"n_replications must be >= 10, got {n_replications}")
    curve = fit.curve
    predictions = fit.predict(curve.times)
    residuals = curve.performance - predictions
    rng = np.random.default_rng(seed)

    samples: list[tuple[float, ...]] = []
    failed = 0
    starts = [fit.model.params]
    for _ in range(n_replications):
        resampled = rng.choice(residuals, size=residuals.size, replace=True)
        synthetic = ResilienceCurve(
            curve.times,
            predictions + resampled,
            nominal=curve.nominal,
            name=f"{curve.name}-boot",
        )
        try:
            refit = fit_least_squares(
                fit.model, synthetic, starts=starts, **fit_kwargs
            )
        except ConvergenceError:
            failed += 1
            continue
        samples.append(refit.model.params)

    if failed > max_failure_fraction * n_replications:
        raise FitError(
            f"{failed}/{n_replications} bootstrap refits failed; "
            f"ensemble too thin to be trustworthy"
        )
    return BootstrapResult(
        fit=fit,
        parameter_samples=np.asarray(samples, dtype=np.float64),
        n_requested=n_replications,
        n_failed=failed,
    )
