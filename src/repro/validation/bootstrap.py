"""Residual-bootstrap uncertainty for fitted resilience models.

A nonparametric companion to the asymptotic machinery in
:mod:`repro.fitting.uncertainty`: resample the fit's residuals with
replacement, rebuild synthetic curves around the fitted predictions,
refit, and read uncertainty off the ensemble of refits. More expensive
but free of the Gaussian/linearization assumptions — useful exactly
where the paper's Eq. (13) band is most questionable (small n,
near-boundary parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.core.curve import ResilienceCurve
from repro.exceptions import ConvergenceError, FitError
from repro.fitting.least_squares import fit_least_squares
from repro.fitting.options import DEFAULT_ENGINE_OPTIONS, split_engine_kwargs
from repro.fitting.result import FitResult
from repro.models.base import ResilienceModel
from repro.parallel import ExecutorLike, get_executor
from repro.validation.intervals import ConfidenceBand

__all__ = ["BootstrapResult", "residual_bootstrap"]


@dataclass(frozen=True)
class BootstrapResult:
    """Ensemble of bootstrap refits.

    Attributes
    ----------
    parameter_samples:
        Array of shape ``(n_successful, n_params)``.
    n_requested, n_failed:
        Replication bookkeeping (failed refits are dropped).
    """

    fit: FitResult
    parameter_samples: FloatArray
    n_requested: int
    n_failed: int

    @property
    def n_successful(self) -> int:
        return int(self.parameter_samples.shape[0])

    def parameter_interval(
        self, name: str, confidence: float = 0.95
    ) -> tuple[float, float]:
        """Percentile CI for one parameter."""
        names = self.fit.model.param_names
        if name not in names:
            raise FitError(f"unknown parameter {name!r}; known: {', '.join(names)}")
        column = self.parameter_samples[:, names.index(name)]
        alpha = 1.0 - confidence
        return (
            float(np.quantile(column, alpha / 2.0)),
            float(np.quantile(column, 1.0 - alpha / 2.0)),
        )

    def prediction_band(
        self, times: ArrayLike, confidence: float = 0.95
    ) -> ConfidenceBand:
        """Pointwise percentile band of the refit predictions."""
        t = np.asarray(times, dtype=np.float64)
        family = self.fit.model
        predictions = np.stack(
            [family.evaluate(t, sample) for sample in self.parameter_samples]
        )
        alpha = 1.0 - confidence
        lower = np.quantile(predictions, alpha / 2.0, axis=0)
        upper = np.quantile(predictions, 1.0 - alpha / 2.0, axis=0)
        center = family.evaluate(t, family.params)
        sigma = float(np.sqrt(self.fit.sse / max(len(self.fit.curve) - 2, 1)))
        return ConfidenceBand(
            center=center, lower=lower, upper=upper,
            confidence=confidence, sigma=sigma,
        )


class _ReplicationWork(NamedTuple):
    """Picklable work unit: one bootstrap refit."""

    family: ResilienceModel
    curve: ResilienceCurve
    starts: tuple[tuple[float, ...], ...]
    fit_kwargs: dict


def _bootstrap_refit(work: _ReplicationWork) -> tuple[float, ...] | None:
    """Refit one synthetic curve; ``None`` encodes convergence failure
    (module-level so the process backend can pickle it)."""
    try:
        refit = fit_least_squares(
            work.family, work.curve, starts=work.starts, **work.fit_kwargs
        )
    except ConvergenceError:
        return None
    return refit.model.params


def residual_bootstrap(
    fit: FitResult,
    *,
    n_replications: int = 200,
    seed: int = 0,
    max_failure_fraction: float = 0.25,
    executor: ExecutorLike = None,
    n_workers: int | None = None,
    **fit_kwargs: object,
) -> BootstrapResult:
    """Residual bootstrap around a least-squares fit.

    Each replication draws residuals with replacement, adds them to the
    fitted predictions, and refits the same family (seeding the
    optimizer at the original optimum for speed and stability). All
    resampling happens up front from a single seeded stream, so the
    replication set — and therefore the ensemble — is identical on
    every executor backend and worker count.

    Raises
    ------
    FitError
        If *n_replications* < 10 or too many refits fail.
    """
    if n_replications < 10:
        raise FitError(f"n_replications must be >= 10, got {n_replications}")
    # Loose engine plumbing in fit_kwargs is deprecated; fold it into a
    # per-replication options bundle. Synthetic resampled curves are
    # unique per (seed, replication), so cache lookups can never hit —
    # caching defaults off unless the caller opted in.
    options, fit_kwargs = split_engine_kwargs("residual_bootstrap", None, fit_kwargs)
    cell_options = options if options is not None else DEFAULT_ENGINE_OPTIONS
    if cell_options.cache is None:
        cell_options = cell_options.replace(cache=False)
    fit_kwargs["options"] = cell_options
    curve = fit.curve
    predictions = fit.predict(curve.times)
    residuals = curve.performance - predictions
    rng = np.random.default_rng(seed)

    starts = (fit.model.params,)
    work_units = []
    for _ in range(n_replications):
        resampled = rng.choice(residuals, size=residuals.size, replace=True)
        synthetic = ResilienceCurve(
            curve.times,
            predictions + resampled,
            nominal=curve.nominal,
            name=f"{curve.name}-boot",
        )
        work_units.append(
            _ReplicationWork(fit.model, synthetic, starts, dict(fit_kwargs))
        )

    outcomes = get_executor(executor, max_workers=n_workers).map(
        _bootstrap_refit, work_units
    )
    samples = [params for params in outcomes if params is not None]
    failed = n_replications - len(samples)

    if failed > max_failure_fraction * n_replications:
        raise FitError(
            f"{failed}/{n_replications} bootstrap refits failed; "
            f"ensemble too thin to be trustworthy"
        )
    return BootstrapResult(
        fit=fit,
        parameter_samples=np.asarray(samples, dtype=np.float64),
        n_requested=n_replications,
        n_failed=failed,
    )
