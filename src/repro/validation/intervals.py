"""Confidence intervals and empirical coverage — Section III-B.2.

The paper builds a normal-approximation band around model predictions:
the residual variance is ``σ² = SSE/(n − 2)`` (Eq. 12) and the band is
``± z_{1−α/2}·σ`` (Eq. 13, stated for the change in performance between
successive intervals and drawn in Figs. 3–6 around the fitted curve).
Empirical coverage (EC) is the fraction of observations falling inside
the band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro._typing import ArrayLike, FloatArray
from repro.exceptions import MetricError
from repro.utils.numerics import as_float_array

__all__ = [
    "residual_variance",
    "confidence_band",
    "delta_confidence_band",
    "empirical_coverage",
    "ConfidenceBand",
]


def residual_variance(sse_value: float, n_observations: int) -> float:
    """Eq. (12): ``σ² = SSE/(n − 2)``.

    Raises
    ------
    MetricError
        If there are fewer than three observations or SSE is negative.
    """
    if n_observations <= 2:
        raise MetricError(
            f"residual variance needs n > 2 observations, got {n_observations}"
        )
    if sse_value < 0.0:
        raise MetricError(f"SSE must be non-negative, got {sse_value}")
    return sse_value / (n_observations - 2)


def _critical_value(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise MetricError(f"confidence must lie in (0, 1), got {confidence}")
    alpha = 1.0 - confidence
    return float(stats.norm.ppf(1.0 - alpha / 2.0))


@dataclass(frozen=True)
class ConfidenceBand:
    """A symmetric band around predictions.

    Attributes
    ----------
    center:
        Predicted values (the band's midline).
    lower, upper:
        Band edges.
    confidence:
        Nominal confidence level, e.g. 0.95.
    sigma:
        Residual standard deviation used for the half-width.
    """

    center: FloatArray
    lower: FloatArray
    upper: FloatArray
    confidence: float
    sigma: float

    @property
    def half_width(self) -> float:
        """Half-width of the band (constant across times)."""
        return _critical_value(self.confidence) * self.sigma

    def coverage_of(self, observations: ArrayLike) -> float:
        """Empirical coverage of *observations* by this band."""
        return empirical_coverage(observations, self.lower, self.upper)


def confidence_band(
    predictions: ArrayLike,
    sse_value: float,
    n_observations: int,
    *,
    confidence: float = 0.95,
) -> ConfidenceBand:
    """Eq. (13) band around *predictions*.

    *sse_value* and *n_observations* come from the fitting window (the
    band's width reflects training dispersion even where the band is
    drawn over the prediction horizon, as in Figs. 3–6).
    """
    center = as_float_array(predictions, "predictions")
    sigma = float(np.sqrt(residual_variance(sse_value, n_observations)))
    half = _critical_value(confidence) * sigma
    return ConfidenceBand(
        center=center,
        lower=center - half,
        upper=center + half,
        confidence=confidence,
        sigma=sigma,
    )


def delta_confidence_band(
    predictions: ArrayLike,
    sse_value: float,
    n_observations: int,
    *,
    confidence: float = 0.95,
) -> ConfidenceBand:
    """Eq. (13) band for the *change* in performance ΔP(tᵢ).

    The paper states the interval for the increment between successive
    time steps; this helper differences the predictions first. The
    returned arrays have one fewer element than *predictions*.
    """
    center = np.diff(as_float_array(predictions, "predictions"))
    if center.size == 0:
        raise MetricError("need at least two predictions to difference")
    sigma = float(np.sqrt(residual_variance(sse_value, n_observations)))
    half = _critical_value(confidence) * sigma
    return ConfidenceBand(
        center=center,
        lower=center - half,
        upper=center + half,
        confidence=confidence,
        sigma=sigma,
    )


def empirical_coverage(
    observations: ArrayLike, lower: ArrayLike, upper: ArrayLike
) -> float:
    """Fraction of observations inside ``[lower, upper]`` element-wise."""
    obs = as_float_array(observations, "observations")
    lo = as_float_array(lower, "lower")
    hi = as_float_array(upper, "upper")
    if obs.size != lo.size or obs.size != hi.size:
        raise MetricError(
            f"length mismatch: observations={obs.size}, lower={lo.size}, upper={hi.size}"
        )
    if obs.size == 0:
        raise MetricError("cannot compute coverage of zero observations")
    inside = (obs >= lo) & (obs <= hi)
    return float(np.count_nonzero(inside)) / obs.size
