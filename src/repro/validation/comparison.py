"""Side-by-side comparison of model families on one curve.

Produces the per-dataset blocks of Tables I and III: every family's
SSE, PMSE, r²adj, and EC, plus winner selection per measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.curve import ResilienceCurve
from repro.exceptions import ConvergenceError, MetricError
from repro.models.base import ResilienceModel
from repro.utils.tables import format_table
from repro.validation.crossval import PredictiveEvaluation, evaluate_predictive

__all__ = ["ModelComparison", "compare_models"]

#: Measures where smaller is better.
_MINIMIZE = {"sse", "pmse"}
#: Measures where larger is better.
_MAXIMIZE = {"r2_adjusted", "empirical_coverage"}


@dataclass
class ModelComparison:
    """Evaluations of several families on a single curve."""

    curve: ResilienceCurve
    evaluations: dict[str, PredictiveEvaluation] = field(default_factory=dict)
    failed: list[str] = field(default_factory=list)

    def measure(self, model_name: str, measure_name: str) -> float:
        """One measure value for one model."""
        evaluation = self.evaluations[model_name]
        try:
            return float(getattr(evaluation.measures, measure_name))
        except AttributeError:
            raise MetricError(f"unknown measure {measure_name!r}") from None

    def best(self, measure_name: str) -> str:
        """Name of the winning model under *measure_name*.

        Raises
        ------
        MetricError
            If the measure is unknown or no evaluations exist.
        """
        if not self.evaluations:
            raise MetricError("no successful evaluations to compare")
        if measure_name in _MINIMIZE:
            chooser = min
        elif measure_name in _MAXIMIZE:
            chooser = max
        else:
            raise MetricError(f"unknown measure {measure_name!r}")
        return chooser(
            self.evaluations, key=lambda name: self.measure(name, measure_name)
        )

    def to_table(self) -> str:
        """Aligned text table in the paper's Table I/III layout."""
        headers = ["Model", "SSE", "PMSE", "r2_adj", "EC"]
        rows = []
        for name, evaluation in self.evaluations.items():
            m = evaluation.measures
            rows.append(
                [name, m.sse, m.pmse, m.r2_adjusted, f"{m.empirical_coverage:.2%}"]
            )
        title = f"Dataset: {self.curve.name or '<unnamed>'} (n={len(self.curve)})"
        return format_table(headers, rows, title=title)


def compare_models(
    families: list[ResilienceModel],
    curve: ResilienceCurve,
    *,
    train_fraction: float = 0.9,
    confidence: float = 0.95,
    **fit_kwargs: object,
) -> ModelComparison:
    """Evaluate every family on *curve* with the paper's protocol.

    Families whose fit fails to converge are recorded in
    :attr:`ModelComparison.failed` instead of aborting the comparison.
    """
    comparison = ModelComparison(curve=curve)
    for family in families:
        try:
            comparison.evaluations[family.name] = evaluate_predictive(
                family,
                curve,
                train_fraction=train_fraction,
                confidence=confidence,
                **fit_kwargs,
            )
        except ConvergenceError:
            comparison.failed.append(family.name)
    return comparison
