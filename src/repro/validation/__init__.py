"""Model validation and statistical inference (Section III of the paper).

Goodness-of-fit measures (SSE, PMSE, adjusted R² plus AIC/BIC/RMSE
extensions), normal-approximation confidence intervals with empirical
coverage, train/test splitting utilities, and side-by-side model
comparison.
"""

from repro.validation.gof import (
    GoodnessOfFit,
    adjusted_r_squared,
    aic,
    bic,
    mean_absolute_error,
    mean_absolute_percentage_error,
    pmse,
    r_squared,
    rmse,
    sse,
)
from repro.validation.intervals import (
    ConfidenceBand,
    confidence_band,
    delta_confidence_band,
    empirical_coverage,
    residual_variance,
)
from repro.validation.crossval import PredictiveEvaluation, evaluate_predictive, rolling_origin
from repro.validation.comparison import ModelComparison, compare_models
from repro.validation.bootstrap import BootstrapResult, residual_bootstrap
from repro.validation.residuals import (
    ResidualDiagnostics,
    diagnose_residuals,
    durbin_watson,
    jarque_bera,
    ljung_box,
    runs_test,
)
from repro.validation.selection import (
    DEFAULT_CANDIDATES,
    ModelRecommendation,
    recommend_model,
)

__all__ = [
    "GoodnessOfFit",
    "sse",
    "pmse",
    "r_squared",
    "adjusted_r_squared",
    "rmse",
    "aic",
    "bic",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "ConfidenceBand",
    "residual_variance",
    "confidence_band",
    "delta_confidence_band",
    "empirical_coverage",
    "PredictiveEvaluation",
    "evaluate_predictive",
    "rolling_origin",
    "ModelComparison",
    "compare_models",
    "BootstrapResult",
    "residual_bootstrap",
    "ResidualDiagnostics",
    "diagnose_residuals",
    "durbin_watson",
    "ljung_box",
    "jarque_bera",
    "runs_test",
    "ModelRecommendation",
    "recommend_model",
    "DEFAULT_CANDIDATES",
]
