"""Numeric, integration, table-rendering, and plotting helpers."""

from repro.utils.numerics import (
    as_float_array,
    clip_positive,
    is_finite_array,
    safe_exp,
    safe_log,
    solve_quadratic,
)
from repro.utils.integrate import trapezoid_integral, cumulative_trapezoid, adaptive_quad

# NOTE: repro.utils.serialization is intentionally NOT re-exported here:
# it depends on repro.core/models, which themselves import repro.utils —
# import it as `repro.utils.serialization` directly.

__all__ = [
    "as_float_array",
    "clip_positive",
    "is_finite_array",
    "safe_exp",
    "safe_log",
    "solve_quadratic",
    "trapezoid_integral",
    "cumulative_trapezoid",
    "adaptive_quad",
]
