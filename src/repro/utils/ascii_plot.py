"""Terminal line plots for the figure-reproduction benchmarks.

matplotlib is not available in the offline environment, so the figure
benches render each curve (data, model fit, confidence band) as an ASCII
chart plus a machine-readable series dump. The plot is coarse by nature;
its purpose is to let a human confirm the V/U/W/L shapes and the fit
quality at a glance.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro._typing import ArrayLike
from repro.utils.numerics import as_float_array

__all__ = ["ascii_plot"]

#: Symbols assigned to successive series, in order.
_MARKERS = "*o+x#@%&"


def ascii_plot(
    series: Mapping[str, tuple[ArrayLike, ArrayLike]],
    *,
    width: int = 72,
    height: int = 20,
    title: str | None = None,
) -> str:
    """Render named ``(times, values)`` series on a shared ASCII canvas.

    Parameters
    ----------
    series:
        Mapping from series label to a ``(times, values)`` pair. Series
        are drawn in iteration order; later series overwrite earlier ones
        where they collide on the canvas.
    width, height:
        Canvas size in characters, excluding axes labels.
    title:
        Optional heading line.

    Returns
    -------
    str
        Multi-line plot with a legend mapping markers to labels.
    """
    if not series:
        raise ValueError("ascii_plot requires at least one series")
    if width < 8 or height < 4:
        raise ValueError("canvas too small: need width >= 8 and height >= 4")

    parsed: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for label, (times, values) in series.items():
        t = as_float_array(times, f"{label} times")
        v = as_float_array(values, f"{label} values")
        if t.size != v.size:
            raise ValueError(f"series {label!r}: length mismatch")
        if t.size == 0:
            raise ValueError(f"series {label!r}: empty")
        parsed[label] = (t, v)

    t_min = min(float(t.min()) for t, _ in parsed.values())
    t_max = max(float(t.max()) for t, _ in parsed.values())
    v_min = min(float(v.min()) for _, v in parsed.values())
    v_max = max(float(v.max()) for _, v in parsed.values())
    if t_max == t_min:
        t_max = t_min + 1.0
    if v_max == v_min:
        v_max = v_min + 1.0

    canvas = [[" "] * width for _ in range(height)]
    legend: list[str] = []
    for index, (label, (t, v)) in enumerate(parsed.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {label}")
        cols = np.round((t - t_min) / (t_max - t_min) * (width - 1)).astype(int)
        rows = np.round((v - v_min) / (v_max - v_min) * (height - 1)).astype(int)
        for col, row in zip(cols, rows):
            canvas[height - 1 - row][col] = marker

    top_label = f"{v_max:.4g}"
    bottom_label = f"{v_min:.4g}"
    gutter = max(len(top_label), len(bottom_label))
    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * gutter} +{'-' * width}"
    lines.append(axis)
    lines.append(
        f"{' ' * gutter}  {f'{t_min:.4g}'.ljust(width - 8)}{f'{t_max:.4g}'.rjust(8)}"
    )
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)
