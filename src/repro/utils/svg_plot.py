"""Standalone SVG line charts (no matplotlib dependency).

The offline environment has no plotting library, but the paper's
figures deserve better than ASCII when viewed outside a terminal. This
module writes self-contained SVG files: multiple line series, optional
shaded confidence bands, axes with tick labels, and a legend. The
figure benches save one SVG per figure next to the text artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable
from xml.sax.saxutils import escape

import numpy as np

from repro._typing import ArrayLike
from repro.exceptions import ReproError
from repro.utils.numerics import as_float_array

__all__ = ["SvgChart"]

#: Default line colors, cycled across series.
_COLORS = (
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
)


@dataclass
class _Series:
    label: str
    times: np.ndarray
    values: np.ndarray
    color: str
    dashed: bool


@dataclass
class _Band:
    label: str
    times: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    color: str


@dataclass
class SvgChart:
    """A simple multi-series line chart rendered to SVG.

    Parameters
    ----------
    title:
        Chart heading.
    x_label, y_label:
        Axis captions.
    width, height:
        Pixel dimensions of the output.
    """

    title: str = ""
    x_label: str = ""
    y_label: str = ""
    width: int = 720
    height: int = 440
    _series: list[_Series] = field(default_factory=list, repr=False)
    _bands: list[_Band] = field(default_factory=list, repr=False)

    # Plot margins (left, right, top, bottom).
    _MARGINS = (64, 16, 40, 48)

    def add_series(
        self,
        label: str,
        times: ArrayLike,
        values: ArrayLike,
        *,
        color: str | None = None,
        dashed: bool = False,
    ) -> "SvgChart":
        """Add a line series; returns self for chaining."""
        t = as_float_array(times, f"{label} times")
        v = as_float_array(values, f"{label} values")
        if t.size != v.size or t.size < 2:
            raise ReproError(
                f"series {label!r}: need matching arrays with >= 2 points"
            )
        chosen = color or _COLORS[(len(self._series)) % len(_COLORS)]
        self._series.append(_Series(label, t, v, chosen, dashed))
        return self

    def add_band(
        self,
        label: str,
        times: ArrayLike,
        lower: ArrayLike,
        upper: ArrayLike,
        *,
        color: str = "#1f77b4",
    ) -> "SvgChart":
        """Add a shaded band (e.g. the Eq. 13 confidence interval)."""
        t = as_float_array(times, f"{label} times")
        lo = as_float_array(lower, f"{label} lower")
        hi = as_float_array(upper, f"{label} upper")
        if not (t.size == lo.size == hi.size) or t.size < 2:
            raise ReproError(f"band {label!r}: need matching arrays with >= 2 points")
        self._bands.append(_Band(label, t, lo, hi, color))
        return self

    # ------------------------------------------------------------------
    def _extent(self) -> tuple[float, float, float, float]:
        if not self._series and not self._bands:
            raise ReproError("chart has no series to render")
        xs = [s.times for s in self._series] + [b.times for b in self._bands]
        ys = (
            [s.values for s in self._series]
            + [b.lower for b in self._bands]
            + [b.upper for b in self._bands]
        )
        x_min = min(float(a.min()) for a in xs)
        x_max = max(float(a.max()) for a in xs)
        y_min = min(float(a.min()) for a in ys)
        y_max = max(float(a.max()) for a in ys)
        if x_max == x_min:
            x_max = x_min + 1.0
        if y_max == y_min:
            y_max = y_min + 1.0
        pad = 0.04 * (y_max - y_min)
        return x_min, x_max, y_min - pad, y_max + pad

    def _project(
        self, extent: tuple[float, float, float, float]
    ) -> "tuple[Callable[[np.ndarray], np.ndarray], Callable[[np.ndarray], np.ndarray]]":
        left, right, top, bottom = self._MARGINS
        x_min, x_max, y_min, y_max = extent
        plot_w = self.width - left - right
        plot_h = self.height - top - bottom

        def px(x: np.ndarray) -> np.ndarray:
            return left + (x - x_min) / (x_max - x_min) * plot_w

        def py(y: np.ndarray) -> np.ndarray:
            return top + (y_max - y) / (y_max - y_min) * plot_h

        return px, py

    @staticmethod
    def _ticks(low: float, high: float, count: int = 5) -> list[float]:
        raw = np.linspace(low, high, count)
        return [float(v) for v in raw]

    def render(self) -> str:
        """The chart as an SVG document string."""
        extent = self._extent()
        px, py = self._project(extent)
        left, right, top, bottom = self._MARGINS
        x_min, x_max, y_min, y_max = extent

        parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
        ]
        # Axes frame.
        parts.append(
            f'<rect x="{left}" y="{top}" width="{self.width - left - right}" '
            f'height="{self.height - top - bottom}" fill="none" '
            f'stroke="#333" stroke-width="1"/>'
        )
        # Ticks and grid.
        for x in self._ticks(x_min, x_max):
            x_px = float(px(np.array([x]))[0])
            parts.append(
                f'<line x1="{x_px:.1f}" y1="{top}" x2="{x_px:.1f}" '
                f'y2="{self.height - bottom}" stroke="#eee" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{x_px:.1f}" y="{self.height - bottom + 16}" '
                f'font-size="11" text-anchor="middle" fill="#333">{x:.4g}</text>'
            )
        for y in self._ticks(y_min, y_max):
            y_px = float(py(np.array([y]))[0])
            parts.append(
                f'<line x1="{left}" y1="{y_px:.1f}" x2="{self.width - right}" '
                f'y2="{y_px:.1f}" stroke="#eee" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{left - 6}" y="{y_px + 4:.1f}" font-size="11" '
                f'text-anchor="end" fill="#333">{y:.4g}</text>'
            )
        # Bands under the lines.
        for band in self._bands:
            xs = np.concatenate([band.times, band.times[::-1]])
            ys = np.concatenate([band.upper, band.lower[::-1]])
            points = " ".join(
                f"{float(x):.2f},{float(y):.2f}" for x, y in zip(px(xs), py(ys))
            )
            parts.append(
                f'<polygon points="{points}" fill="{band.color}" '
                f'fill-opacity="0.15" stroke="none"/>'
            )
        # Lines.
        for series in self._series:
            points = " ".join(
                f"{float(x):.2f},{float(y):.2f}"
                for x, y in zip(px(series.times), py(series.values))
            )
            dash = ' stroke-dasharray="6,4"' if series.dashed else ""
            parts.append(
                f'<polyline points="{points}" fill="none" '
                f'stroke="{series.color}" stroke-width="1.8"{dash}/>'
            )
        # Title and axis labels.
        if self.title:
            parts.append(
                f'<text x="{self.width / 2:.0f}" y="22" font-size="14" '
                f'text-anchor="middle" fill="#111">{escape(self.title)}</text>'
            )
        if self.x_label:
            parts.append(
                f'<text x="{self.width / 2:.0f}" y="{self.height - 10}" '
                f'font-size="12" text-anchor="middle" fill="#333">'
                f"{escape(self.x_label)}</text>"
            )
        if self.y_label:
            parts.append(
                f'<text x="16" y="{self.height / 2:.0f}" font-size="12" '
                f'text-anchor="middle" fill="#333" '
                f'transform="rotate(-90 16 {self.height / 2:.0f})">'
                f"{escape(self.y_label)}</text>"
            )
        # Legend.
        legend_y = top + 14
        for index, series in enumerate(self._series):
            y = legend_y + 16 * index
            x = left + 10
            parts.append(
                f'<line x1="{x}" y1="{y - 4}" x2="{x + 18}" y2="{y - 4}" '
                f'stroke="{series.color}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{x + 24}" y="{y}" font-size="11" fill="#333">'
                f"{escape(series.label)}</text>"
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str | Path) -> Path:
        """Write the SVG document to *path*."""
        file_path = Path(path)
        file_path.write_text(self.render() + "\n")
        return file_path
