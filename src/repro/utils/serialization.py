"""JSON persistence for fitted models and fit results.

A fitted model serializes to its registry name plus its parameter
vector, so anything :func:`repro.models.registry.make_model` can build
round-trips. Fit results additionally carry the training curve and the
headline diagnostics, enabling "fit once, forecast later" workflows.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.curve import ResilienceCurve
from repro.exceptions import DataError
from repro.fitting.result import FitResult
from repro.models.base import ResilienceModel
from repro.models.registry import make_model

__all__ = [
    "model_to_dict",
    "model_from_dict",
    "fit_result_to_dict",
    "fit_result_from_dict",
    "save_fit_result",
    "load_fit_result",
]

#: Schema tag written into every payload.
_FORMAT = "repro/fit-result"
_VERSION = 1


def model_to_dict(model: ResilienceModel) -> dict[str, Any]:
    """Serialize a *bound* model to a plain dict."""
    return {"name": model.name, "params": list(model.params)}


def model_from_dict(payload: dict[str, Any]) -> ResilienceModel:
    """Rebuild a bound model from :func:`model_to_dict` output.

    Raises
    ------
    DataError
        On missing keys or an unknown model name.
    """
    try:
        name = payload["name"]
        params = payload["params"]
    except (KeyError, TypeError):
        raise DataError(f"malformed model payload: {payload!r}") from None
    try:
        family = make_model(name)
    except Exception as exc:
        raise DataError(f"cannot rebuild model {name!r}: {exc}") from exc
    return family.bind(params)


def fit_result_to_dict(fit: FitResult) -> dict[str, Any]:
    """Serialize a fit result (model + training curve + diagnostics)."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "model": model_to_dict(fit.model),
        "curve": fit.curve.to_dict(),
        "sse": fit.sse,
        "converged": fit.converged,
        "n_starts": fit.n_starts,
        "n_failures": fit.n_failures,
        "message": fit.message,
    }


def fit_result_from_dict(payload: dict[str, Any]) -> FitResult:
    """Inverse of :func:`fit_result_to_dict`.

    Raises
    ------
    DataError
        On schema mismatch or malformed content.
    """
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise DataError("payload is not a repro fit-result document")
    if payload.get("version") != _VERSION:
        raise DataError(
            f"unsupported fit-result version {payload.get('version')!r}; "
            f"this build reads version {_VERSION}"
        )
    try:
        return FitResult(
            model=model_from_dict(payload["model"]),
            curve=ResilienceCurve.from_dict(payload["curve"]),
            sse=float(payload["sse"]),
            converged=bool(payload["converged"]),
            n_starts=int(payload["n_starts"]),
            n_failures=int(payload["n_failures"]),
            message=str(payload.get("message", "")),
        )
    except KeyError as exc:
        raise DataError(f"fit-result payload missing key: {exc}") from None


def save_fit_result(fit: FitResult, path: str | Path) -> None:
    """Write a fit result to a JSON file."""
    Path(path).write_text(json.dumps(fit_result_to_dict(fit), indent=2) + "\n")


def load_fit_result(path: str | Path) -> FitResult:
    """Read a fit result from a JSON file.

    Raises
    ------
    DataError
        On a missing file or invalid JSON/schema.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"no such fit-result file: {file_path}")
    try:
        payload = json.loads(file_path.read_text())
    except json.JSONDecodeError as exc:
        raise DataError(f"{file_path}: invalid JSON ({exc})") from None
    return fit_result_from_dict(payload)
