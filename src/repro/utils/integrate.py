"""Quadrature helpers for resilience-metric and model-area computations.

The interval-based metrics of Section IV integrate performance curves.
Empirical curves are integrated with the trapezoid rule on their native
sampling grid; model curves use adaptive quadrature when no closed form
is available.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

import numpy as np
from scipy import integrate as _sci_integrate

from repro._typing import ArrayLike, FloatArray
from repro.utils.numerics import as_float_array

__all__ = [
    "trapezoid_integral",
    "cumulative_trapezoid",
    "adaptive_quad",
    "gauss_legendre_quad",
]


def trapezoid_integral(times: ArrayLike, values: ArrayLike) -> float:
    """Trapezoid-rule integral of sampled *values* over *times*.

    Parameters
    ----------
    times:
        Strictly increasing sample times.
    values:
        Sampled function values, same length as *times*.

    Raises
    ------
    ValueError
        If lengths mismatch, fewer than two samples are given, or the
        time grid is not strictly increasing.
    """
    t = as_float_array(times, "times")
    v = as_float_array(values, "values")
    if t.size != v.size:
        raise ValueError(f"times and values length mismatch: {t.size} vs {v.size}")
    if t.size < 2:
        raise ValueError("need at least two samples to integrate")
    if np.any(np.diff(t) <= 0):
        raise ValueError("times must be strictly increasing")
    return float(np.trapezoid(v, t))


def cumulative_trapezoid(times: ArrayLike, values: ArrayLike) -> FloatArray:
    """Cumulative trapezoid integral, starting at 0 for the first sample."""
    t = as_float_array(times, "times")
    v = as_float_array(values, "values")
    if t.size != v.size:
        raise ValueError(f"times and values length mismatch: {t.size} vs {v.size}")
    if t.size < 2:
        raise ValueError("need at least two samples to integrate")
    if np.any(np.diff(t) <= 0):
        raise ValueError("times must be strictly increasing")
    increments = 0.5 * (v[1:] + v[:-1]) * np.diff(t)
    out = np.empty_like(t)
    out[0] = 0.0
    np.cumsum(increments, out=out[1:])
    return out


def adaptive_quad(
    func: Callable[[float], float],
    lower: float,
    upper: float,
    *,
    rtol: float = 1e-8,
) -> float:
    """Adaptive quadrature of *func* over ``[lower, upper]``.

    A thin wrapper over :func:`scipy.integrate.quad` that tolerates a
    reversed interval (returns the signed integral) and raises on
    non-finite results.
    """
    if lower == upper:
        return 0.0
    value, _abserr = _sci_integrate.quad(func, lower, upper, epsrel=rtol, limit=200)
    if not np.isfinite(value):
        raise ValueError(
            f"integral over [{lower}, {upper}] did not evaluate to a finite value"
        )
    return float(value)


@lru_cache(maxsize=8)
def _leggauss(order: int) -> tuple[FloatArray, FloatArray]:
    nodes, weights = np.polynomial.legendre.leggauss(order)
    return nodes, weights


def gauss_legendre_quad(
    func: Callable[[FloatArray], ArrayLike],
    lower: float,
    upper: float,
    *,
    n_panels: int = 64,
    order: int = 16,
) -> float:
    """Composite fixed-order Gauss–Legendre quadrature on a *batched*
    integrand.

    Unlike :func:`adaptive_quad`, *func* is called **once** with the
    full flat array of ``n_panels · order`` quadrature nodes and must
    return the integrand evaluated elementwise — so integrating a model
    curve costs a single vectorized ``predict`` instead of hundreds of
    scalar calls. Order-16 panels integrate the smooth hazard/mixture
    curves to near machine precision; the default 64 panels keep the
    per-panel interval short enough for the log-trend mixtures' mildly
    singular ``t·ln t`` behaviour near zero.

    A reversed interval returns the signed integral, matching
    :func:`adaptive_quad`.

    Raises
    ------
    ValueError
        If *n_panels* or *order* is not positive, or the integral is
        non-finite.
    """
    if n_panels < 1 or order < 1:
        raise ValueError(
            f"n_panels and order must be positive, got {n_panels} and {order}"
        )
    if lower == upper:
        return 0.0
    nodes, weights = _leggauss(order)
    edges = np.linspace(lower, upper, n_panels + 1)
    midpoints = 0.5 * (edges[:-1] + edges[1:])
    half_widths = 0.5 * np.diff(edges)  # negative for a reversed interval
    points = (midpoints[:, None] + half_widths[:, None] * nodes[None, :]).ravel()
    values = np.asarray(func(points), dtype=np.float64).reshape(n_panels, order)
    value = float(np.sum((values @ weights) * half_widths))
    if not np.isfinite(value):
        raise ValueError(
            f"integral over [{lower}, {upper}] did not evaluate to a finite value"
        )
    return value
