"""Plain-text table rendering for benchmark and report output.

The benchmark harness regenerates the paper's tables as aligned text so
they can be compared side-by-side with the published values. No external
dependency (tabulate etc.) is used.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_float"]


def format_float(value: float, digits: int = 8) -> str:
    """Render *value* in the fixed-point style used by the paper's tables.

    Large or tiny magnitudes fall back to scientific notation so columns
    stay readable.
    """
    if value != value:  # NaN
        return "nan"
    if value == 0.0:
        return f"{0.0:.{digits}f}"
    magnitude = abs(value)
    if magnitude >= 10 ** (digits - 1) or magnitude < 10 ** (-digits):
        return f"{value:.{max(digits - 4, 2)}e}"
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_digits: int = 8,
) -> str:
    """Render *rows* as an aligned monospace table.

    Floats are formatted with :func:`format_float`; everything else with
    ``str``. Columns are left-aligned for text and right-aligned for
    numbers.
    """
    rendered: list[list[str]] = []
    numeric: list[bool] = [True] * len(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        cells: list[str] = []
        for col, item in enumerate(row):
            if isinstance(item, bool):
                cells.append(str(item))
                numeric[col] = False
            elif isinstance(item, float):
                cells.append(format_float(item, float_digits))
            elif isinstance(item, int):
                cells.append(str(item))
            else:
                cells.append(str(item))
                numeric[col] = False
        rendered.append(cells)

    widths = [len(h) for h in headers]
    for cells in rendered:
        for col, cell in enumerate(cells):
            widths[col] = max(widths[col], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for col, cell in enumerate(cells):
            parts.append(cell.rjust(widths[col]) if numeric[col] else cell.ljust(widths[col]))
        return "  ".join(parts).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(cells) for cells in rendered)
    return "\n".join(lines)
