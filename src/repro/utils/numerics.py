"""Low-level numeric helpers shared by distributions, hazards, and models.

These helpers exist to keep numeric edge-case handling (overflow in
``exp``, ``log`` of zero, degenerate quadratics) in one audited place
instead of scattered across model code.
"""

from __future__ import annotations

import math

import numpy as np

from repro._typing import ArrayLike, FloatArray

__all__ = [
    "as_float_array",
    "clip_positive",
    "is_finite_array",
    "safe_exp",
    "safe_log",
    "solve_quadratic",
    "nearly_equal",
]

#: Largest exponent passed to ``np.exp`` before clipping; ``exp(709)`` is the
#: last value representable in float64.
_EXP_MAX = 700.0

#: Smallest positive value substituted for non-positive inputs to ``log``.
_TINY = np.finfo(np.float64).tiny


def as_float_array(values: ArrayLike, name: str = "values") -> FloatArray:
    """Convert *values* to a contiguous 1-D float64 array.

    Parameters
    ----------
    values:
        Sequence or array of numbers.
    name:
        Name used in error messages.

    Raises
    ------
    ValueError
        If the input is not 1-D after conversion.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def is_finite_array(values: ArrayLike) -> bool:
    """Return ``True`` when every element of *values* is finite."""
    return bool(np.all(np.isfinite(np.asarray(values, dtype=np.float64))))


def clip_positive(values: FloatArray, minimum: float = _TINY) -> FloatArray:
    """Clip *values* from below so the result is strictly positive."""
    return np.maximum(values, minimum)


def safe_exp(values: ArrayLike) -> FloatArray:
    """``np.exp`` with the argument clipped to avoid overflow warnings.

    Values above ~700 would overflow float64; they are clipped so the
    result saturates at a large finite number instead of ``inf`` with a
    RuntimeWarning. Underflow to 0.0 is already silent and exact enough.
    """
    arr = np.asarray(values, dtype=np.float64)
    return np.exp(np.clip(arr, -_EXP_MAX, _EXP_MAX))


def safe_log(values: ArrayLike) -> FloatArray:
    """``np.log`` with non-positive inputs clamped to the smallest float.

    This keeps optimizer objective functions finite when a search step
    wanders to the boundary of the feasible region.
    """
    arr = np.asarray(values, dtype=np.float64)
    return np.log(np.maximum(arr, _TINY))


def nearly_equal(a: float, b: float, rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Float comparison with both relative and absolute tolerance."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


def solve_quadratic(a: float, b: float, c: float) -> tuple[float, ...]:
    """Real roots of ``a·x² + b·x + c = 0`` in increasing order.

    Handles the degenerate linear (``a == 0``) and constant cases, and
    uses the numerically stable citardauq formulation to avoid
    catastrophic cancellation when ``b² ≫ 4ac``.

    Returns
    -------
    tuple of float
        Zero, one, or two real roots sorted ascending. A double root is
        returned once.
    """
    if a == 0.0:
        if b == 0.0:
            return ()
        return (-c / b,)
    disc = b * b - 4.0 * a * c
    if disc < 0.0:
        return ()
    if disc == 0.0:
        return (-b / (2.0 * a),)
    sqrt_disc = math.sqrt(disc)
    # q has the same sign as b to avoid subtracting nearly equal numbers.
    q = -0.5 * (b + math.copysign(sqrt_disc, b))
    roots = sorted((q / a, c / q)) if q != 0.0 else sorted((0.0, -b / a))
    return tuple(roots)
