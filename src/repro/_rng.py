"""Deterministic random-generator resolution.

The library's determinism contract (every artifact reproducible
bit-for-bit) forbids unseeded global randomness — ``repro.devtools.lint``
rule R2 (``determinism``) rejects any ``np.random.*`` call that does not
carry an explicit seed. APIs that accept an optional
``rng: np.random.Generator`` therefore resolve their ``None`` fallback
here, onto a generator seeded with :data:`DEFAULT_SEED`, instead of the
historical unseeded ``np.random.default_rng()``. Callers who want
varying draws pass their own generator; callers who pass nothing get
the same documented stream every time.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "resolve_rng"]

#: Library-wide default seed for APIs whose caller did not provide a
#: generator (the paper's Resilience Week 2022 date).
DEFAULT_SEED = 20220926


def resolve_rng(rng: np.random.Generator | None) -> np.random.Generator:
    """*rng* itself, or a fresh generator seeded with :data:`DEFAULT_SEED`."""
    if rng is not None:
        return rng
    return np.random.default_rng(DEFAULT_SEED)
