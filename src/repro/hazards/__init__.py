"""Hazard-rate functions from reliability engineering.

The paper's first modeling approach (Section II-A) treats a resilience
curve as a scaled bathtub-shaped hazard function: performance starts
high, dips, and rises again exactly as a bathtub hazard does. This
subpackage provides the two hazard forms the paper evaluates — the
quadratic (Eq. 1) and Hjorth's competing-risks form (Eq. 4) — plus
simpler rates (constant, linear, Weibull, exponential-power) used in
tests, ablations, and the repairable-system simulator.
"""

from repro.hazards.base import HazardFunction
from repro.hazards.quadratic import QuadraticHazard
from repro.hazards.hjorth import HjorthHazard
from repro.hazards.constant import ConstantHazard
from repro.hazards.linear import LinearHazard
from repro.hazards.weibull_hazard import WeibullHazard
from repro.hazards.exponential_power import ExponentialPowerHazard
from repro.hazards.registry import available_hazards, get_hazard_class, register_hazard

__all__ = [
    "HazardFunction",
    "QuadraticHazard",
    "HjorthHazard",
    "ConstantHazard",
    "LinearHazard",
    "WeibullHazard",
    "ExponentialPowerHazard",
    "available_hazards",
    "get_hazard_class",
    "register_hazard",
]
