"""Competing-risks (Hjorth) hazard function — Eq. (4) of the paper.

``λ(t) = α/(1 + βt) + 2γt`` superposes a decreasing burn-in risk and a
linearly increasing wear-out risk (Hjorth 1980). Depending on the
parameters the rate is increasing, decreasing, constant, or
bathtub-shaped, which is the flexibility the paper credits for its
stronger PMSE results in Table I.
"""

from __future__ import annotations

import math
from typing import ClassVar

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.hazards.base import HazardFunction
from repro.utils.numerics import as_float_array, solve_quadratic

__all__ = ["HjorthHazard"]


class HjorthHazard(HazardFunction):
    """Competing-risks rate ``α/(1 + βt) + 2γt`` with α, γ ≥ 0 and β > 0."""

    name: ClassVar[str] = "competing_risks"
    param_names: ClassVar[tuple[str, ...]] = ("alpha", "beta", "gamma")
    param_lower_bounds: ClassVar[tuple[float, ...]] = (0.0, 1e-9, 0.0)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (1e3, 1e3, 1e3)

    def __init__(self, alpha: float, beta: float, gamma: float) -> None:
        self.alpha = self._require_nonnegative("alpha", alpha)
        self.beta = self._require_positive("beta", beta)
        self.gamma = self._require_nonnegative("gamma", gamma)

    def rate(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return self.alpha / (1.0 + self.beta * t) + 2.0 * self.gamma * t

    def cumulative(self, times: ArrayLike) -> FloatArray:
        """Closed form: ``(α/β)·ln(1 + βt) + γt²`` (Eq. 6 of the paper)."""
        t = as_float_array(times, "times")
        return (self.alpha / self.beta) * np.log1p(self.beta * t) + self.gamma * t * t

    def is_bathtub(self, horizon: float = 100.0) -> bool:
        """Interior minimum exists iff ``αβ > 2γ`` (rate initially falls).

        The minimum must also land inside ``(0, horizon)``.
        """
        if self.alpha == 0.0 or self.gamma == 0.0:
            return False
        if self.alpha * self.beta <= 2.0 * self.gamma:
            return False
        t_min = self._vertex()
        return 0.0 < t_min < horizon

    def _vertex(self) -> float:
        """Stationary point: ``λ'(t*) = 0`` at
        ``t* = (√(αβ/(2γ)) − 1)/β`` when γ > 0."""
        if self.gamma == 0.0:
            return math.inf
        return (math.sqrt(self.alpha * self.beta / (2.0 * self.gamma)) - 1.0) / self.beta

    def minimum(self, horizon: float = 100.0) -> tuple[float, float]:
        if self.gamma == 0.0:
            # Pure burn-in: monotone decreasing, minimum at the horizon.
            return horizon, float(self.rate(np.array([horizon]))[0])
        vertex = min(max(self._vertex(), 0.0), horizon)
        return vertex, float(self.rate(np.array([vertex]))[0])

    def crossing_times(self, level: float) -> tuple[float, ...]:
        """Times where ``λ(t) = level``.

        Multiplying through by ``(1 + βt)`` gives the quadratic
        ``2γβ·t² + (2γ − level·β)·t + (α − level) = 0`` whose later root
        is the paper's Eq. (5) recovery time.
        """
        roots = solve_quadratic(
            2.0 * self.gamma * self.beta,
            2.0 * self.gamma - level * self.beta,
            self.alpha - level,
        )
        return tuple(t for t in roots if 1.0 + self.beta * t > 0.0)

    def recovery_time(self, level: float) -> float:
        """Later positive root of ``λ(t) = level`` — Eq. (5).

        Raises
        ------
        ValueError
            If the rate never rises back to *level*.
        """
        roots = [t for t in self.crossing_times(level) if t > 0.0]
        if not roots:
            raise ValueError(
                f"competing-risks hazard never reaches level {level}: no positive root"
            )
        return roots[-1]
