"""Linear hazard function (Rayleigh-type wear-out)."""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.hazards.base import HazardFunction
from repro.utils.numerics import as_float_array

__all__ = ["LinearHazard"]


class LinearHazard(HazardFunction):
    """Affine rate ``λ(t) = a + b·t`` (clipped at zero from below)."""

    name: ClassVar[str] = "linear"
    param_names: ClassVar[tuple[str, ...]] = ("a", "b")
    param_lower_bounds: ClassVar[tuple[float, ...]] = (0.0, -1e3)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (1e6, 1e3)

    def __init__(self, a: float, b: float) -> None:
        self.a = self._require_nonnegative("a", a)
        self.b = self._require_finite("b", b)

    def rate(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.maximum(self.a + self.b * t, 0.0)

    def cumulative(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        if self.b >= 0.0 or self.a == 0.0:
            return self.a * t + 0.5 * self.b * t * t
        # Rate hits zero at t0 = a/(-b) and stays clipped afterwards.
        t0 = self.a / (-self.b)
        capped = np.minimum(t, t0)
        return self.a * capped + 0.5 * self.b * capped * capped

    def is_bathtub(self, horizon: float = 100.0) -> bool:
        return False

    def minimum(self, horizon: float = 100.0) -> tuple[float, float]:
        if self.b >= 0.0:
            return 0.0, self.a
        t_min = min(self.a / (-self.b), horizon)
        return t_min, float(self.rate(np.array([t_min]))[0])
