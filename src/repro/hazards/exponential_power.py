"""Exponential-power hazard — an alternative bathtub-capable form.

``λ(t) = (k/θ)·(t/θ)^{k−1}·exp((t/θ)^k)`` (Smith & Bain 1975). For
``k < 1`` the rate is bathtub-shaped: the power term dominates early
(decreasing) and the exponential term late (increasing). Included as an
extension model for the bathtub-family ablation.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.hazards.base import HazardFunction
from repro.utils.numerics import as_float_array, safe_exp

__all__ = ["ExponentialPowerHazard"]


class ExponentialPowerHazard(HazardFunction):
    """Exponential-power rate with scale ``theta`` and shape ``k``."""

    name: ClassVar[str] = "exponential_power"
    param_names: ClassVar[tuple[str, ...]] = ("theta", "k")
    param_lower_bounds: ClassVar[tuple[float, ...]] = (1e-8, 1e-3)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (1e8, 50.0)

    def __init__(self, theta: float, k: float) -> None:
        self.theta = self._require_positive("theta", theta)
        self.k = self._require_positive("k", k)

    def rate(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        scaled = np.maximum(t, 0.0) / self.theta
        z = np.power(scaled, self.k)
        with np.errstate(divide="ignore"):
            values = (self.k / self.theta) * np.power(scaled, self.k - 1.0) * safe_exp(z)
        if self.k < 1.0:
            values = np.where(t == 0.0, np.inf, values)
        return values

    def cumulative(self, times: ArrayLike) -> FloatArray:
        """Closed form: ``Λ(t) = exp((t/θ)^k) − 1``."""
        t = as_float_array(times, "times")
        return np.expm1(np.power(np.maximum(t, 0.0) / self.theta, self.k))

    def is_bathtub(self, horizon: float = 100.0) -> bool:
        """Bathtub exactly when ``k < 1`` with the minimum inside the window."""
        if self.k >= 1.0:
            return False
        t_min, _ = self.minimum(horizon)
        return 0.0 < t_min < horizon

    def minimum(self, horizon: float = 100.0) -> tuple[float, float]:
        """Closed form: stationary point at ``t* = θ·((1−k)/k)^{1/k}``."""
        if self.k >= 1.0:
            return 0.0, float(self.rate(np.array([0.0]))[0])
        t_star = self.theta * ((1.0 - self.k) / self.k) ** (1.0 / self.k)
        t_star = min(t_star, horizon)
        return t_star, float(self.rate(np.array([t_star]))[0])
