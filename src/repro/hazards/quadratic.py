"""Quadratic hazard function — Eq. (1) of the paper.

``λ(t) = α + β·t + γ·t²`` is bathtub-shaped when ``−2√(αγ) < β < 0``
with ``α, γ > 0``: the parabola opens upward with its vertex at a
positive time and a positive minimum value.
"""

from __future__ import annotations

import math
from typing import ClassVar

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.hazards.base import HazardFunction
from repro.utils.numerics import as_float_array, solve_quadratic

__all__ = ["QuadraticHazard"]


class QuadraticHazard(HazardFunction):
    """Quadratic rate ``α + βt + γt²``.

    Parameters are validated only for finiteness; bathtub shape is a
    property (:meth:`is_bathtub`), not a construction constraint, so the
    fitting code can traverse non-bathtub regions of parameter space.
    """

    name: ClassVar[str] = "quadratic"
    param_names: ClassVar[tuple[str, ...]] = ("alpha", "beta", "gamma")
    param_lower_bounds: ClassVar[tuple[float, ...]] = (0.0, -1e3, 0.0)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (1e3, 0.0, 1e3)

    def __init__(self, alpha: float, beta: float, gamma: float) -> None:
        self.alpha = self._require_finite("alpha", alpha)
        self.beta = self._require_finite("beta", beta)
        self.gamma = self._require_finite("gamma", gamma)

    def rate(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return self.alpha + self.beta * t + self.gamma * t * t

    def cumulative(self, times: ArrayLike) -> FloatArray:
        """Closed form: ``αt + βt²/2 + γt³/3`` (Eq. 3 of the paper)."""
        t = as_float_array(times, "times")
        return self.alpha * t + 0.5 * self.beta * t * t + (self.gamma / 3.0) * t**3

    def is_bathtub(self, horizon: float = 100.0) -> bool:
        """Exact condition from the paper: ``−2√(αγ) < β < 0``, α, γ > 0.

        The vertex must also fall inside ``(0, horizon)`` for the dip to
        be visible on the evaluation window.
        """
        if self.alpha <= 0.0 or self.gamma <= 0.0:
            return False
        if not (-2.0 * math.sqrt(self.alpha * self.gamma) < self.beta < 0.0):
            return False
        vertex = -self.beta / (2.0 * self.gamma)
        return 0.0 < vertex < horizon

    def minimum(self, horizon: float = 100.0) -> tuple[float, float]:
        """Vertex of the parabola, clipped to ``[0, horizon]``."""
        if self.gamma > 0.0:
            vertex = -self.beta / (2.0 * self.gamma)
            vertex = min(max(vertex, 0.0), horizon)
        else:
            # Concave or linear: minimum is at an endpoint.
            endpoints = np.array([0.0, horizon])
            vertex = float(endpoints[int(np.argmin(self.rate(endpoints)))])
        return vertex, float(self.rate(np.array([vertex]))[0])

    def crossing_times(self, level: float) -> tuple[float, ...]:
        """Times at which ``λ(t) = level``, ascending; Eq. (2) solves for
        the later (recovery) root."""
        return tuple(
            t for t in solve_quadratic(self.gamma, self.beta, self.alpha - level)
        )

    def recovery_time(self, level: float) -> float:
        """Later positive root of ``λ(t) = level`` — Eq. (2).

        Raises
        ------
        ValueError
            If the rate never rises back to *level* (no positive root).
        """
        roots = [t for t in self.crossing_times(level) if t > 0.0]
        if not roots:
            raise ValueError(
                f"quadratic hazard never reaches level {level}: no positive root"
            )
        return roots[-1]
