"""Constant hazard function (exponential lifetime)."""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.hazards.base import HazardFunction
from repro.utils.numerics import as_float_array

__all__ = ["ConstantHazard"]


class ConstantHazard(HazardFunction):
    """Flat rate ``λ(t) = rate`` — the memoryless baseline."""

    name: ClassVar[str] = "constant"
    param_names: ClassVar[tuple[str, ...]] = ("rate_value",)
    param_lower_bounds: ClassVar[tuple[float, ...]] = (0.0,)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (1e6,)

    def __init__(self, rate_value: float) -> None:
        self.rate_value = self._require_nonnegative("rate_value", rate_value)

    def rate(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.full_like(t, self.rate_value)

    def cumulative(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return self.rate_value * t

    def is_bathtub(self, horizon: float = 100.0) -> bool:
        return False

    def minimum(self, horizon: float = 100.0) -> tuple[float, float]:
        return 0.0, self.rate_value
