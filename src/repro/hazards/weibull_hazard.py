"""Weibull (power-law) hazard function."""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.hazards.base import HazardFunction
from repro.utils.numerics import as_float_array

__all__ = ["WeibullHazard"]


class WeibullHazard(HazardFunction):
    """Power-law rate ``λ(t) = (k/θ)·(t/θ)^{k−1}``.

    Decreasing for ``k < 1`` (burn-in), constant for ``k = 1``,
    increasing for ``k > 1`` (wear-out); never bathtub-shaped on its
    own, which is why the paper turns to the quadratic and
    competing-risks forms.
    """

    name: ClassVar[str] = "weibull_hazard"
    param_names: ClassVar[tuple[str, ...]] = ("theta", "k")
    param_lower_bounds: ClassVar[tuple[float, ...]] = (1e-8, 1e-3)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (1e8, 50.0)

    def __init__(self, theta: float, k: float) -> None:
        self.theta = self._require_positive("theta", theta)
        self.k = self._require_positive("k", k)

    def rate(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        scaled = np.maximum(t, 0.0) / self.theta
        with np.errstate(divide="ignore"):
            values = (self.k / self.theta) * np.power(scaled, self.k - 1.0)
        if self.k < 1.0:
            values = np.where(t == 0.0, np.inf, values)
        return values

    def cumulative(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.power(np.maximum(t, 0.0) / self.theta, self.k)

    def is_bathtub(self, horizon: float = 100.0) -> bool:
        return False

    def minimum(self, horizon: float = 100.0) -> tuple[float, float]:
        if self.k > 1.0:
            return 0.0, 0.0
        if self.k == 1.0:
            return 0.0, 1.0 / self.theta
        return horizon, float(self.rate(np.array([horizon]))[0])
