"""Registry mapping hazard-function names to classes."""

from __future__ import annotations

from typing import Type

from repro.exceptions import ParameterError
from repro.hazards.base import HazardFunction

__all__ = ["register_hazard", "get_hazard_class", "available_hazards"]

_REGISTRY: dict[str, Type[HazardFunction]] = {}


def register_hazard(cls: Type[HazardFunction]) -> Type[HazardFunction]:
    """Register *cls* under its :attr:`name`; usable as a decorator."""
    name = cls.name
    if not name or name == "abstract":
        raise ParameterError(f"{cls.__name__} has no registry name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ParameterError(f"hazard name {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def get_hazard_class(name: str) -> Type[HazardFunction]:
    """Look up a hazard class by registry name (``"hjorth"`` is accepted
    as an alias for ``"competing_risks"``)."""
    aliases = {"hjorth": "competing_risks"}
    key = aliases.get(name.lower(), name.lower())
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ParameterError(f"unknown hazard {name!r}; known: {known}") from None


def available_hazards() -> tuple[str, ...]:
    """Sorted names of all registered hazard functions."""
    return tuple(sorted(_REGISTRY))


def _register_builtins() -> None:
    from repro.hazards.constant import ConstantHazard
    from repro.hazards.exponential_power import ExponentialPowerHazard
    from repro.hazards.hjorth import HjorthHazard
    from repro.hazards.linear import LinearHazard
    from repro.hazards.quadratic import QuadraticHazard
    from repro.hazards.weibull_hazard import WeibullHazard

    for cls in (
        ConstantHazard,
        ExponentialPowerHazard,
        HjorthHazard,
        LinearHazard,
        QuadraticHazard,
        WeibullHazard,
    ):
        register_hazard(cls)


_register_builtins()
