"""Abstract base class for hazard-rate functions."""

from __future__ import annotations

import abc
from typing import ClassVar, Sequence

import numpy as np
from scipy import optimize

from repro._typing import ArrayLike, FloatArray
from repro.exceptions import ParameterError
from repro.utils.integrate import adaptive_quad
from repro.utils.numerics import as_float_array

__all__ = ["HazardFunction"]


class HazardFunction(abc.ABC):
    """A non-negative rate function ``λ(t)`` on ``t ≥ 0``.

    Subclasses implement :meth:`rate`; the base class derives the
    cumulative hazard numerically and locates interior minima, which
    subclasses override with closed forms where available.
    """

    #: Short registry name, e.g. ``"quadratic"``.
    name: ClassVar[str] = "abstract"

    #: Canonical parameter order.
    param_names: ClassVar[tuple[str, ...]] = ()

    #: Per-parameter fitting bounds, same order as :attr:`param_names`.
    param_lower_bounds: ClassVar[tuple[float, ...]] = ()
    param_upper_bounds: ClassVar[tuple[float, ...]] = ()

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    @property
    def params(self) -> dict[str, float]:
        """Parameter values keyed by name."""
        return {name: float(getattr(self, name)) for name in self.param_names}

    @property
    def param_vector(self) -> tuple[float, ...]:
        """Parameter values as a flat tuple in canonical order."""
        return tuple(float(getattr(self, name)) for name in self.param_names)

    @classmethod
    def from_vector(cls, vector: Sequence[float]) -> "HazardFunction":
        """Construct from a flat parameter vector in canonical order."""
        if len(vector) != len(cls.param_names):
            raise ParameterError(
                f"{cls.__name__} expects {len(cls.param_names)} parameters, "
                f"got {len(vector)}"
            )
        return cls(**dict(zip(cls.param_names, (float(v) for v in vector))))

    @classmethod
    def n_params(cls) -> int:
        """Number of free parameters."""
        return len(cls.param_names)

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v:.6g}" for k, v in self.params.items())
        return f"{type(self).__name__}({args})"

    # ------------------------------------------------------------------
    # Core quantities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def rate(self, times: ArrayLike) -> FloatArray:
        """Hazard rate ``λ(t)`` evaluated at *times* (must be ≥ 0)."""

    def cumulative(self, times: ArrayLike) -> FloatArray:
        """Cumulative hazard ``Λ(t) = ∫₀ᵗ λ(u) du`` (numeric fallback)."""
        t = as_float_array(times, "times")
        out = np.empty_like(t)
        for index, upper in enumerate(t):
            out[index] = adaptive_quad(
                lambda u: float(self.rate(np.array([u]))[0]), 0.0, float(upper)
            )
        return out

    def is_bathtub(self, horizon: float = 100.0) -> bool:
        """Whether the rate decreases then increases on ``(0, horizon)``.

        The generic test samples the rate densely and checks for a
        strict interior minimum with a decreasing approach and an
        increasing departure. Subclasses override with exact parameter
        conditions when known (e.g. Eq. 1's ``−2√(αγ) < β < 0``).
        """
        grid = np.linspace(1e-9, horizon, 2001)
        values = self.rate(grid)
        arg = int(np.argmin(values))
        if arg == 0 or arg == grid.size - 1:
            return False
        return bool(values[0] > values[arg] and values[-1] > values[arg])

    def minimum(self, horizon: float = 100.0) -> tuple[float, float]:
        """Time and value of the rate minimum on ``[0, horizon]``.

        Uses a coarse grid to bracket the minimum, then refines with
        bounded scalar minimization. Subclasses override with closed
        forms where available.
        """
        grid = np.linspace(0.0, horizon, 2001)
        values = self.rate(grid)
        arg = int(np.argmin(values))
        lo = grid[max(arg - 1, 0)]
        hi = grid[min(arg + 1, grid.size - 1)]
        if lo == hi:
            return float(grid[arg]), float(values[arg])
        result = optimize.minimize_scalar(
            lambda t: float(self.rate(np.array([t]))[0]),
            bounds=(float(lo), float(hi)),
            method="bounded",
        )
        return float(result.x), float(result.fun)

    # ------------------------------------------------------------------
    # Validation helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _require_finite(name: str, value: float) -> float:
        value = float(value)
        if not np.isfinite(value):
            raise ParameterError(f"{name} must be finite, got {value}")
        return value

    @staticmethod
    def _require_positive(name: str, value: float) -> float:
        value = float(value)
        if not np.isfinite(value) or value <= 0.0:
            raise ParameterError(f"{name} must be a positive finite number, got {value}")
        return value

    @staticmethod
    def _require_nonnegative(name: str, value: float) -> float:
        value = float(value)
        if not np.isfinite(value) or value < 0.0:
            raise ParameterError(f"{name} must be non-negative and finite, got {value}")
        return value
