"""Shared type aliases used across the :mod:`repro` package."""

from __future__ import annotations

from typing import Callable, Mapping, Sequence, Union

import numpy as np
import numpy.typing as npt

__all__ = [
    "ArrayLike",
    "FloatArray",
    "ParamDict",
    "ParamVector",
    "ScalarFunction",
]

#: Anything convertible to a 1-D float array (lists, tuples, ndarrays).
ArrayLike = Union[Sequence[float], npt.NDArray[np.floating]]

#: A 1-D numpy array of float64.
FloatArray = npt.NDArray[np.float64]

#: Mapping from parameter name to value.
ParamDict = Mapping[str, float]

#: A flat parameter vector in a model's canonical parameter order.
ParamVector = Sequence[float]

#: A scalar function of time, vectorized over numpy arrays.
ScalarFunction = Callable[[FloatArray], FloatArray]
