"""repro — predictive resilience modeling.

A full reimplementation of *"Predictive Resilience Modeling"* (Silva,
Hermosillo Hidalgo, Linkov, Fiondella; Resilience Week 2022):
bathtub-shaped hazard models and mixture-distribution models that
forecast a disrupted system's performance trajectory, recovery time,
and interval-based resilience metrics, validated on seven U.S.
recession curves.

Quickstart
----------
>>> from repro import load_recession, make_model, evaluate_predictive
>>> curve = load_recession("1990-93")
>>> evaluation = evaluate_predictive(make_model("competing_risks"), curve)
>>> round(evaluation.measures.r2_adjusted, 2) >= 0.9
True
"""

from repro.core.curve import ResilienceCurve
from repro.core.events import DisruptionEvent
from repro.core.phases import ResiliencePhases, detect_phases
from repro.core.shapes import CurveShape, classify_shape
from repro.datasets.recessions import (
    RECESSION_NAMES,
    load_all_recessions,
    load_recession,
)
from repro.datasets.stream import StreamEvent, iter_curve, replay_recessions
from repro.datasets.synthetic import curve_from_model, make_shape_curve
from repro.fitting.least_squares import FitManyResult, fit_least_squares, fit_many
from repro.fitting.options import EngineOptions
from repro.fitting.result import FitResult
from repro.observability import Tracer, enable_tracing
from repro.parallel import FitExecutor, get_executor
from repro.metrics.predictive import predictive_metric_report, relative_error
from repro.models.competing_risks import CompetingRisksResilienceModel
from repro.models.mixture import MixtureResilienceModel
from repro.models.quadratic import QuadraticResilienceModel
from repro.models.registry import available_models, make_model
from repro.serving import ForecastSession, OnlineForecaster, RefitPolicy
from repro.validation.comparison import compare_models
from repro.validation.crossval import evaluate_predictive

__version__ = "1.1.0"

#: The public batch + serving surface, alphabetized;
#: tests/test_public_api.py asserts it matches what is importable.
__all__ = [
    "CompetingRisksResilienceModel",
    "CurveShape",
    "DisruptionEvent",
    "EngineOptions",
    "FitExecutor",
    "FitManyResult",
    "FitResult",
    "ForecastSession",
    "MixtureResilienceModel",
    "OnlineForecaster",
    "QuadraticResilienceModel",
    "RECESSION_NAMES",
    "RefitPolicy",
    "ResilienceCurve",
    "ResiliencePhases",
    "StreamEvent",
    "Tracer",
    "__version__",
    "available_models",
    "classify_shape",
    "compare_models",
    "curve_from_model",
    "detect_phases",
    "enable_tracing",
    "evaluate_predictive",
    "fit_least_squares",
    "fit_many",
    "get_executor",
    "iter_curve",
    "load_all_recessions",
    "load_recession",
    "make_model",
    "make_shape_curve",
    "predictive_metric_report",
    "relative_error",
    "replay_recessions",
]
