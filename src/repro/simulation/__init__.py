"""Stochastic simulation substrate.

Three pieces connect the paper's curve models back to classical
reliability engineering (its Section I framing of resilience as a
generalization of repairable systems):

* :mod:`repro.simulation.shocks` — Poisson/renewal shock arrival
  processes (the hazard model of Ouyang & Dueñas-Osorio's
  Poisson-characterized metrics).
* :mod:`repro.simulation.system` — a component-level repairable-system
  simulator whose aggregate output *is* a resilience curve.
* :mod:`repro.simulation.montecarlo` — ensemble sampling of noisy
  curves from a fitted model, used to check confidence-interval
  coverage and metric uncertainty empirically.
"""

from repro.simulation.degradation import AgingSystem, MaintenancePolicy
from repro.simulation.shocks import PoissonShockProcess, RenewalShockProcess
from repro.simulation.system import Component, RepairableSystem
from repro.simulation.montecarlo import (
    MonteCarloSummary,
    sample_curves,
    coverage_experiment,
    metric_uncertainty,
)

__all__ = [
    "AgingSystem",
    "MaintenancePolicy",
    "PoissonShockProcess",
    "RenewalShockProcess",
    "Component",
    "RepairableSystem",
    "MonteCarloSummary",
    "sample_curves",
    "coverage_experiment",
    "metric_uncertainty",
]
