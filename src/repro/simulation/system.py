"""A component-level repairable-system performance simulator.

Section I of the paper frames resilience engineering as a
generalization of repairable-systems reliability: performance degrades
under shocks and is restored by maintenance. This simulator makes that
connection concrete — a system of components with stochastic
time-to-failure and time-to-repair produces an aggregate performance
trace that *is* a resilience curve, which the paper's models can then
be fit to.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.curve import ResilienceCurve
from repro.core.events import DisruptionEvent
from repro.distributions.base import LifetimeDistribution
from repro.exceptions import ParameterError

__all__ = ["Component", "RepairableSystem"]


@dataclass(frozen=True)
class Component:
    """One repairable component.

    Attributes
    ----------
    name:
        Component label.
    time_to_failure:
        Lifetime distribution governing spontaneous failures.
    time_to_repair:
        Distribution of repair durations once failed.
    capacity:
        Contribution to system performance while operational.
    """

    name: str
    time_to_failure: LifetimeDistribution
    time_to_repair: LifetimeDistribution
    capacity: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity <= 0.0 or not np.isfinite(self.capacity):
            raise ParameterError(
                f"component {self.name!r}: capacity must be positive, "
                f"got {self.capacity}"
            )


class RepairableSystem:
    """A set of independent repairable components plus external shocks.

    Performance at time t is the total capacity of operational
    components divided by total capacity (so 1.0 = fully operational,
    matching the paper's normalized curves). External
    :class:`~repro.core.events.DisruptionEvent` shocks fail a random
    subset of components proportional to the shock magnitude.
    """

    def __init__(self, components: list[Component]) -> None:
        if not components:
            raise ParameterError("a repairable system needs at least one component")
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate component names: {sorted(names)}")
        self.components = list(components)
        self.total_capacity = float(sum(c.capacity for c in components))

    def simulate(
        self,
        horizon: float,
        *,
        time_step: float = 1.0,
        shocks: list[DisruptionEvent] | None = None,
        seed: int | None = None,
        name: str = "repairable-system",
    ) -> ResilienceCurve:
        """Simulate the system and return its performance curve.

        Parameters
        ----------
        horizon:
            Simulation end time.
        time_step:
            Sampling interval of the returned curve.
        shocks:
            External disruptions; each fails a
            ``round(magnitude · n_components)`` subset (at least one
            component) at its onset.
        seed:
            RNG seed for reproducibility.
        name:
            Name of the returned curve.
        """
        if horizon <= 0.0:
            raise ParameterError(f"horizon must be positive, got {horizon}")
        if time_step <= 0.0 or time_step > horizon:
            raise ParameterError(
                f"time_step must lie in (0, horizon], got {time_step}"
            )
        rng = np.random.default_rng(seed)
        n = len(self.components)

        # Event queue of (time, sequence, kind, component_index).
        # kind: 0 = failure, 1 = repair completion, 2 = shock.
        queue: list[tuple[float, int, int, int]] = []
        sequence = 0

        def push(time: float, kind: int, comp: int) -> None:
            nonlocal sequence
            heapq.heappush(queue, (time, sequence, kind, comp))
            sequence += 1

        operational = np.ones(n, dtype=bool)
        #: Repair completions currently pending, to ignore stale failures.
        generation = np.zeros(n, dtype=np.int64)

        event_generation_snapshot: dict[int, int] = {}
        for index, component in enumerate(self.components):
            event_generation_snapshot[sequence] = 0
            push(float(component.time_to_failure.rvs(1, rng)[0]), 0, index)
        for shock_index, shock in enumerate(shocks or []):
            if shock.onset <= horizon:
                push(float(shock.onset), 2, shock_index)

        sample_times = np.arange(0.0, horizon + 0.5 * time_step, time_step)
        performance = np.empty_like(sample_times)
        next_sample = 0

        def record_until(time: float) -> None:
            nonlocal next_sample
            level = float(
                sum(
                    c.capacity
                    for c, up in zip(self.components, operational)
                    if up
                )
            ) / self.total_capacity
            while next_sample < sample_times.size and sample_times[next_sample] <= time:
                performance[next_sample] = level
                next_sample += 1

        shocks_list = shocks or []
        clock = 0.0
        while queue and clock <= horizon:
            time, seq, kind, target = heapq.heappop(queue)
            if time > horizon:
                break
            record_until(time - 1e-12)
            clock = time
            if kind == 0:  # failure
                snapshot = event_generation_snapshot.pop(seq, None)
                if snapshot is not None and snapshot != generation[target]:
                    continue  # stale failure scheduled before a repair cycle
                if not operational[target]:
                    continue
                operational[target] = False
                component = self.components[target]
                push(time + float(component.time_to_repair.rvs(1, rng)[0]), 1, target)
            elif kind == 1:  # repair completion
                operational[target] = True
                generation[target] += 1
                component = self.components[target]
                next_failure = time + float(component.time_to_failure.rvs(1, rng)[0])
                event_generation_snapshot[sequence] = int(generation[target])
                push(next_failure, 0, target)
            else:  # shock
                shock = shocks_list[target]
                up_indices = np.nonzero(operational)[0]
                if up_indices.size == 0:
                    continue
                count = max(int(round(shock.magnitude * n)), 1)
                count = min(count, up_indices.size)
                victims = rng.choice(up_indices, size=count, replace=False)
                for victim in victims:
                    operational[victim] = False
                    component = self.components[int(victim)]
                    push(
                        time + float(component.time_to_repair.rvs(1, rng)[0]),
                        1,
                        int(victim),
                    )
        record_until(horizon)
        return ResilienceCurve(
            sample_times,
            performance,
            nominal=1.0,
            name=name,
            metadata={
                "n_components": n,
                "n_shocks": len(shocks_list),
                "seed": seed,
            },
        )

    def steady_state_availability(self) -> float:
        """Analytic availability ``MTTF/(MTTF + MTTR)`` averaged by
        capacity, ignoring shocks — a sanity anchor for simulations."""
        total = 0.0
        for component in self.components:
            mttf = component.time_to_failure.mean()
            mttr = component.time_to_repair.mean()
            total += component.capacity * mttf / (mttf + mttr)
        return total / self.total_capacity
