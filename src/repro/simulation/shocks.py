"""Shock arrival processes.

Disruptive events arriving over time are classically modeled as a
Poisson process (as in Ouyang & Dueñas-Osorio's time-dependent
resilience assessment). A renewal generalization draws inter-arrival
times from any registered lifetime distribution.
"""

from __future__ import annotations

import numpy as np

from repro._rng import resolve_rng
from repro._typing import FloatArray
from repro.core.events import DisruptionEvent
from repro.distributions.base import LifetimeDistribution
from repro.distributions.exponential import Exponential
from repro.exceptions import ParameterError

__all__ = ["PoissonShockProcess", "RenewalShockProcess"]


class RenewalShockProcess:
    """Shocks with i.i.d. inter-arrival times from any lifetime
    distribution.

    Parameters
    ----------
    interarrival:
        Distribution of times between consecutive shocks.
    magnitude_range:
        Uniform range of fractional performance loss per shock.
    """

    def __init__(
        self,
        interarrival: LifetimeDistribution,
        *,
        magnitude_range: tuple[float, float] = (0.05, 0.3),
    ) -> None:
        low, high = magnitude_range
        if not 0.0 < low <= high <= 1.0:
            raise ParameterError(
                f"magnitude_range must satisfy 0 < low <= high <= 1, got "
                f"({low}, {high})"
            )
        self.interarrival = interarrival
        self.magnitude_range = (float(low), float(high))

    def arrival_times(
        self, horizon: float, rng: np.random.Generator | None = None
    ) -> FloatArray:
        """Shock times on ``[0, horizon]``."""
        if horizon <= 0.0:
            raise ParameterError(f"horizon must be positive, got {horizon}")
        generator = resolve_rng(rng)
        times: list[float] = []
        clock = 0.0
        # Draw in batches sized by the expected count to bound Python looping.
        mean = self.interarrival.mean()
        batch = max(int(2 * horizon / max(mean, 1e-12)) + 8, 8)
        while clock <= horizon:
            for gap in self.interarrival.rvs(batch, generator):
                clock += float(gap)
                if clock > horizon:
                    break
                times.append(clock)
            else:
                continue
            break
        return np.asarray(times, dtype=np.float64)

    def sample_events(
        self,
        horizon: float,
        rng: np.random.Generator | None = None,
        *,
        name_prefix: str = "shock",
    ) -> list[DisruptionEvent]:
        """Disruption events with uniform magnitudes on the horizon."""
        generator = resolve_rng(rng)
        events = []
        low, high = self.magnitude_range
        for index, onset in enumerate(self.arrival_times(horizon, generator)):
            magnitude = float(generator.uniform(low, high))
            events.append(
                DisruptionEvent(
                    name=f"{name_prefix}-{index}",
                    onset=float(onset),
                    magnitude=magnitude,
                )
            )
        return events


class PoissonShockProcess(RenewalShockProcess):
    """Homogeneous Poisson shocks with the given arrival ``rate``."""

    def __init__(
        self,
        rate: float,
        *,
        magnitude_range: tuple[float, float] = (0.05, 0.3),
    ) -> None:
        if rate <= 0.0 or not np.isfinite(rate):
            raise ParameterError(f"rate must be positive and finite, got {rate}")
        super().__init__(Exponential(1.0 / rate), magnitude_range=magnitude_range)
        self.rate = float(rate)

    def expected_count(self, horizon: float) -> float:
        """Expected number of shocks on ``[0, horizon]``."""
        if horizon < 0.0:
            raise ParameterError(f"horizon must be >= 0, got {horizon}")
        return self.rate * horizon
