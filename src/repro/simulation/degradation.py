"""Gradual degradation and maintenance-policy simulation.

The paper's introduction frames resilience engineering as repairable
systems "degraded due to aging or external shocks but proactively
maintained to preserve nominal performance". This module simulates
that aging side: performance drifts downward at a stochastic wear rate
and maintenance actions restore it, under one of two policies:

* **periodic** — maintain every ``interval`` time units regardless of
  condition;
* **condition-based** — maintain whenever performance falls below a
  ``threshold``.

The output is a :class:`~repro.core.curve.ResilienceCurve`, so every
model and metric in the library applies; the policy comparison example
uses the interval metrics to score policies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.curve import ResilienceCurve
from repro.exceptions import ParameterError

__all__ = ["MaintenancePolicy", "AgingSystem"]


@dataclass(frozen=True)
class MaintenancePolicy:
    """When and how well maintenance restores the system.

    Attributes
    ----------
    kind:
        ``"periodic"`` or ``"condition"``.
    interval:
        Time between actions (periodic policy).
    threshold:
        Performance level triggering an action (condition policy).
    restoration:
        Fraction of the *lost* performance each action restores; 1.0 is
        perfect ("good as new"), smaller values model imperfect repair.
    duration:
        Time an action takes; performance is frozen while it runs.
    """

    kind: str = "periodic"
    interval: float = 10.0
    threshold: float = 0.8
    restoration: float = 1.0
    duration: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("periodic", "condition"):
            raise ParameterError(
                f"policy kind must be 'periodic' or 'condition', got {self.kind!r}"
            )
        if self.interval <= 0.0:
            raise ParameterError(f"interval must be positive, got {self.interval}")
        if not 0.0 < self.threshold < 1.0:
            raise ParameterError(
                f"threshold must lie in (0, 1), got {self.threshold}"
            )
        if not 0.0 < self.restoration <= 1.0:
            raise ParameterError(
                f"restoration must lie in (0, 1], got {self.restoration}"
            )
        if self.duration < 0.0:
            raise ParameterError(f"duration must be >= 0, got {self.duration}")


class AgingSystem:
    """A system whose performance decays stochastically with age.

    Parameters
    ----------
    wear_rate:
        Mean fractional performance loss per unit time.
    wear_volatility:
        Standard deviation of the per-step wear (Gaussian, clipped so
        performance never increases from wear alone).
    floor:
        Performance never falls below this (the system retains some
        residual function).
    """

    def __init__(
        self,
        wear_rate: float = 0.01,
        wear_volatility: float = 0.003,
        floor: float = 0.0,
    ) -> None:
        if wear_rate <= 0.0:
            raise ParameterError(f"wear_rate must be positive, got {wear_rate}")
        if wear_volatility < 0.0:
            raise ParameterError(
                f"wear_volatility must be >= 0, got {wear_volatility}"
            )
        if not 0.0 <= floor < 1.0:
            raise ParameterError(f"floor must lie in [0, 1), got {floor}")
        self.wear_rate = float(wear_rate)
        self.wear_volatility = float(wear_volatility)
        self.floor = float(floor)

    def simulate(
        self,
        horizon: float,
        policy: MaintenancePolicy,
        *,
        time_step: float = 1.0,
        seed: int | None = None,
        name: str = "aging-system",
    ) -> ResilienceCurve:
        """Simulate performance under *policy* and return the curve."""
        if horizon <= 0.0:
            raise ParameterError(f"horizon must be positive, got {horizon}")
        if time_step <= 0.0 or time_step > horizon:
            raise ParameterError(
                f"time_step must lie in (0, horizon], got {time_step}"
            )
        rng = np.random.default_rng(seed)
        times = np.arange(0.0, horizon + 0.5 * time_step, time_step)
        performance = np.empty_like(times)
        level = 1.0
        next_periodic = policy.interval
        maintenance_until = -1.0
        n_actions = 0
        for index, now in enumerate(times):
            if now < maintenance_until:
                performance[index] = level
                continue
            # Wear step.
            wear = rng.normal(self.wear_rate, self.wear_volatility) * time_step
            level = max(level - max(wear, 0.0), self.floor)
            # Maintenance trigger.
            triggered = False
            if policy.kind == "periodic" and now >= next_periodic:
                triggered = True
                next_periodic += policy.interval
            elif policy.kind == "condition" and level <= policy.threshold:
                triggered = True
            if triggered:
                level = level + policy.restoration * (1.0 - level)
                maintenance_until = now + policy.duration
                n_actions += 1
            performance[index] = level
        return ResilienceCurve(
            times,
            performance,
            nominal=1.0,
            name=name,
            metadata={
                "policy": policy.kind,
                "n_maintenance_actions": n_actions,
                "seed": seed,
            },
        )
