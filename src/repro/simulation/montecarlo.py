"""Monte-Carlo experiments on fitted resilience models.

Given a bound model treated as ground truth, these helpers sample
ensembles of noisy curves and measure (i) how often the Eq. (13)
confidence band actually covers fresh observations and (ii) the
sampling distribution of each interval metric — empirical companions
to the paper's analytic validation machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import ArrayLike
from repro.core.curve import ResilienceCurve
from repro.datasets.synthetic import curve_from_model
from repro.exceptions import ParameterError
from repro.fitting.least_squares import fit_least_squares
from repro.metrics.interval import METRICS, MetricContext
from repro.models.base import ResilienceModel
from repro.validation.intervals import confidence_band

__all__ = [
    "sample_curves",
    "coverage_experiment",
    "metric_uncertainty",
    "MonteCarloSummary",
]


@dataclass(frozen=True)
class MonteCarloSummary:
    """Mean, standard deviation, and central 95% range of an ensemble."""

    mean: float
    std: float
    lower_95: float
    upper_95: float
    n_samples: int

    @classmethod
    def of(cls, samples: ArrayLike) -> "MonteCarloSummary":
        values = np.asarray(samples, dtype=np.float64)
        if values.size == 0:
            raise ParameterError("cannot summarize an empty sample set")
        return cls(
            mean=float(values.mean()),
            std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
            lower_95=float(np.quantile(values, 0.025)),
            upper_95=float(np.quantile(values, 0.975)),
            n_samples=int(values.size),
        )


def sample_curves(
    model: ResilienceModel,
    times: ArrayLike,
    *,
    n_curves: int,
    noise_std: float,
    seed: int = 0,
) -> list[ResilienceCurve]:
    """*n_curves* noisy realizations of a bound model."""
    if n_curves <= 0:
        raise ParameterError(f"n_curves must be positive, got {n_curves}")
    return [
        curve_from_model(
            model, times, noise_std=noise_std, seed=seed + index,
            name=f"mc-{model.name}-{index}",
        )
        for index in range(n_curves)
    ]


def coverage_experiment(
    model: ResilienceModel,
    times: ArrayLike,
    *,
    n_replications: int = 50,
    noise_std: float = 0.002,
    confidence: float = 0.95,
    seed: int = 0,
    **fit_kwargs: object,
) -> MonteCarloSummary:
    """Empirical coverage of the Eq. (13) band across replications.

    Each replication: sample a noisy curve from the ground-truth
    *model*, refit the same family, build the band, and record the
    fraction of the curve's points it covers. A well-calibrated band
    should average near *confidence* (the paper's EC column).
    """
    coverages: list[float] = []
    for curve in sample_curves(
        model, times, n_curves=n_replications, noise_std=noise_std, seed=seed
    ):
        fit = fit_least_squares(_unbound_clone(model), curve, **fit_kwargs)  # type: ignore[arg-type]
        band = confidence_band(
            fit.predict(curve.times), fit.sse, len(curve), confidence=confidence
        )
        coverages.append(band.coverage_of(curve.performance))
    return MonteCarloSummary.of(coverages)


def metric_uncertainty(
    model: ResilienceModel,
    times: ArrayLike,
    *,
    metric_name: str,
    n_replications: int = 100,
    noise_std: float = 0.002,
    seed: int = 0,
    alpha: float = 0.5,
) -> MonteCarloSummary:
    """Sampling distribution of one interval metric under observation
    noise.

    Each replication computes the metric from a noisy sample of the
    model (no refitting), quantifying how much of Table II/IV's
    "Actual" column is measurement luck.
    """
    if metric_name not in METRICS:
        known = ", ".join(METRICS)
        raise ParameterError(f"unknown metric {metric_name!r}; known: {known}")
    metric = METRICS[metric_name]
    values: list[float] = []
    for curve in sample_curves(
        model, times, n_curves=n_replications, noise_std=noise_std, seed=seed
    ):
        ctx = MetricContext.from_curve(curve)
        kwargs = {"alpha": alpha} if metric_name == "weighted_average_preserved" else {}
        values.append(float(metric(ctx, **kwargs)))
    return MonteCarloSummary.of(values)


def _unbound_clone(model: ResilienceModel) -> ResilienceModel:
    """A fresh unbound family of the same kind as *model*."""
    from repro.models.mixture import MixtureResilienceModel

    if isinstance(model, MixtureResilienceModel):
        return MixtureResilienceModel(
            model.degradation_class.name,
            model.recovery_class.name,
            model.trend_class.name,
        )
    return type(model)()
