"""Interval-based resilience metrics — Section IV of the paper.

Eight metrics over the hazard-to-recovery window, each computable from
an empirical curve ("actual") or a fitted model ("predicted") through
the shared :class:`~repro.metrics.interval.MetricContext` abstraction,
plus the Section IV predictive protocol that generates Tables II/IV.
"""

from repro.metrics.interval import (
    METRICS,
    MetricContext,
    average_performance_lost,
    average_performance_preserved,
    normalized_performance_lost,
    normalized_performance_preserved,
    performance_from_minimum,
    performance_lost,
    performance_preserved,
    weighted_average_preserved,
)
from repro.metrics.point import (
    POINT_METRICS,
    depth,
    rapidity,
    recovery_ratio,
    robustness,
    time_to_minimum,
    time_to_recovery,
)
from repro.metrics.predictive import (
    MetricComparison,
    PredictiveMetricReport,
    predictive_metric_report,
    relative_error,
)
from repro.metrics.probabilistic import (
    performance_distribution_at,
    recovery_probability_by,
    recovery_time_quantile,
)

__all__ = [
    "METRICS",
    "MetricContext",
    "performance_preserved",
    "normalized_performance_preserved",
    "performance_lost",
    "normalized_performance_lost",
    "performance_from_minimum",
    "average_performance_preserved",
    "average_performance_lost",
    "weighted_average_preserved",
    "MetricComparison",
    "PredictiveMetricReport",
    "predictive_metric_report",
    "relative_error",
    "POINT_METRICS",
    "robustness",
    "depth",
    "time_to_minimum",
    "time_to_recovery",
    "rapidity",
    "recovery_ratio",
    "recovery_probability_by",
    "recovery_time_quantile",
    "performance_distribution_at",
]
