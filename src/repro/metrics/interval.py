"""The eight interval-based resilience metrics (Eqs. 14–21).

Each metric is a function of a :class:`MetricContext` — an adapter that
answers "what is performance at time t" and "what is the area under
performance between two times" for either an empirical curve or a
fitted model, so the same metric code produces both the "Actual" and
"Predicted" columns of Tables II and IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.curve import ResilienceCurve
from repro.exceptions import MetricError
from repro.models.base import ResilienceModel

__all__ = [
    "MetricContext",
    "performance_preserved",
    "normalized_performance_preserved",
    "performance_lost",
    "normalized_performance_lost",
    "performance_from_minimum",
    "average_performance_preserved",
    "average_performance_lost",
    "weighted_average_preserved",
    "METRICS",
]


@dataclass(frozen=True)
class MetricContext:
    """Inputs shared by all interval metrics.

    Attributes
    ----------
    hazard_time:
        ``t_h`` — start of the evaluation window.
    trough_time:
        ``t_d`` — time of minimum performance (used by Eqs. 18 and 21).
    recovery_time:
        ``t_r`` — end of the evaluation window.
    nominal:
        ``P(t_h)`` — the baseline against which loss is measured.
    trough_value:
        ``P(t_d)``.
    area:
        Callable returning ``∫ P(t) dt`` between two times.
    start_time:
        ``t_0`` — first time of the full record. Eq. (21) spans the
        entire interval, so its first term starts here rather than at
        ``t_h`` (see Section IV's closing remarks).
    """

    hazard_time: float
    trough_time: float
    recovery_time: float
    nominal: float
    trough_value: float
    area: Callable[[float, float], float]
    start_time: float

    def __post_init__(self) -> None:
        if self.recovery_time <= self.hazard_time:
            raise MetricError(
                f"window is empty: t_h={self.hazard_time}, t_r={self.recovery_time}"
            )

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_curve(
        cls,
        curve: ResilienceCurve,
        *,
        hazard_time: float | None = None,
        recovery_time: float | None = None,
        trough_time: float | None = None,
    ) -> "MetricContext":
        """Context backed by trapezoid integration of an empirical curve.

        Defaults: ``t_h`` and ``t_r`` are the curve's first/last times,
        ``t_d`` its observed trough; ``P(t_h)`` is interpolated at
        ``t_h``.
        """
        t_h = float(curve.times[0]) if hazard_time is None else float(hazard_time)
        t_r = float(curve.times[-1]) if recovery_time is None else float(recovery_time)
        t_d = curve.trough_time if trough_time is None else float(trough_time)
        return cls(
            hazard_time=t_h,
            trough_time=t_d,
            recovery_time=t_r,
            nominal=float(curve.performance_at([t_h])[0]),
            trough_value=float(curve.performance_at([t_d])[0]),
            area=curve.area,
            start_time=float(curve.times[0]),
        )

    @classmethod
    def from_model(
        cls,
        model: ResilienceModel,
        *,
        hazard_time: float,
        recovery_time: float,
        trough_time: float | None = None,
        nominal: float | None = None,
        start_time: float | None = None,
    ) -> "MetricContext":
        """Context backed by a fitted model's (closed-form or numeric)
        area and point predictions.

        ``t_d`` defaults to the model's own predicted minimum on the
        window — the Section IV rule for minima not yet observed.
        """
        if trough_time is None:
            trough_time, trough_value = model.minimum(recovery_time)
        else:
            trough_value = float(model.predict([trough_time])[0])
        if nominal is None:
            nominal = float(model.predict([hazard_time])[0])
        return cls(
            hazard_time=float(hazard_time),
            trough_time=float(trough_time),
            recovery_time=float(recovery_time),
            nominal=float(nominal),
            trough_value=float(trough_value),
            area=model.area_under_curve,
            start_time=float(hazard_time) if start_time is None else float(start_time),
        )


# ----------------------------------------------------------------------
# The eight metrics
# ----------------------------------------------------------------------
def performance_preserved(ctx: MetricContext) -> float:
    """Eq. (14), Bruneau & Reinhorn: area under the curve
    ``∫_{t_h}^{t_r} P(t) dt``."""
    return ctx.area(ctx.hazard_time, ctx.recovery_time)


def normalized_performance_preserved(ctx: MetricContext) -> float:
    """Eq. (15), Ouyang & Dueñas-Osorio: area under the curve over the
    nominal rectangle ``P(t_h)·(t_r − t_h)``."""
    denom = ctx.nominal * (ctx.recovery_time - ctx.hazard_time)
    if denom == 0.0:
        raise MetricError("normalization rectangle has zero area")
    return performance_preserved(ctx) / denom


def performance_lost(ctx: MetricContext) -> float:
    """Eq. (16), Yang & Frangopol: area above the curve
    ``P(t_h)(t_r − t_h) − ∫ P``. Negative when the system ends above
    its level at the hazard time."""
    rect = ctx.nominal * (ctx.recovery_time - ctx.hazard_time)
    return rect - performance_preserved(ctx)


def normalized_performance_lost(ctx: MetricContext) -> float:
    """Eq. (17), Zhou et al.: performance lost over the nominal
    rectangle."""
    denom = ctx.nominal * (ctx.recovery_time - ctx.hazard_time)
    if denom == 0.0:
        raise MetricError("normalization rectangle has zero area")
    return performance_lost(ctx) / denom


def performance_from_minimum(ctx: MetricContext) -> float:
    """Eq. (18), Zobel: performance preserved from the minimum,
    ``∫_{t_d}^{t_r} P − P(t_d)(t_r − t_d)``."""
    if ctx.recovery_time <= ctx.trough_time:
        raise MetricError(
            f"trough at {ctx.trough_time} is not before recovery at "
            f"{ctx.recovery_time}"
        )
    area = ctx.area(ctx.trough_time, ctx.recovery_time)
    return area - ctx.trough_value * (ctx.recovery_time - ctx.trough_time)


def average_performance_preserved(ctx: MetricContext) -> float:
    """Eq. (19), Reed et al.: time-average of performance over the
    window."""
    span = ctx.recovery_time - ctx.hazard_time
    if span <= 0.0:
        raise MetricError("averaging window has zero length")
    return performance_preserved(ctx) / span


def average_performance_lost(ctx: MetricContext) -> float:
    """Eq. (20), Reed et al.: time-average of performance lost."""
    span = ctx.recovery_time - ctx.hazard_time
    if span <= 0.0:
        raise MetricError("averaging window has zero length")
    return performance_lost(ctx) / span


def weighted_average_preserved(ctx: MetricContext, alpha: float = 0.5) -> float:
    """Eq. (21), Cimellaro et al.: weighted average of performance
    preserved before and after the minimum.

    Following Section IV, the first term spans from the start of the
    record (``t_0``) to the trough and the second from the trough to
    ``t_r``, so the metric "utilizes the entire interval".
    """
    if not 0.0 < alpha < 1.0:
        raise MetricError(f"alpha must lie in (0, 1), got {alpha}")
    before_span = ctx.trough_time - ctx.start_time
    after_span = ctx.recovery_time - ctx.trough_time
    if before_span <= 0.0 or after_span <= 0.0:
        raise MetricError(
            f"degenerate spans around trough: before={before_span}, after={after_span}"
        )
    before = ctx.area(ctx.start_time, ctx.trough_time) / before_span
    after = ctx.area(ctx.trough_time, ctx.recovery_time) / after_span
    return alpha * before + (1.0 - alpha) * after


#: Registry of all eight metrics, in the paper's Table II/IV row order.
METRICS: dict[str, Callable[..., float]] = {
    "performance_preserved": performance_preserved,
    "performance_lost": performance_lost,
    "normalized_average_performance_preserved": normalized_performance_preserved,
    "normalized_average_performance_lost": normalized_performance_lost,
    "performance_preserved_from_minimum": performance_from_minimum,
    "average_performance_preserved": average_performance_preserved,
    "average_performance_lost": average_performance_lost,
    "weighted_average_preserved": weighted_average_preserved,
}
