"""Point-based resilience metrics.

Section IV focuses on interval-based metrics; the survey it builds on
(Cheng et al.) also catalogues *point-based* metrics — scalar features
of the curve's critical points. These complement the interval metrics
and are cheap to compute on either an empirical curve or a fitted
model's sampled prediction.

All functions take a :class:`~repro.core.curve.ResilienceCurve` plus an
optional pre-computed :class:`~repro.core.phases.ResiliencePhases`; the
phases are detected on demand otherwise.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.curve import ResilienceCurve
from repro.core.phases import ResiliencePhases, detect_phases
from repro.exceptions import MetricError

__all__ = [
    "robustness",
    "depth",
    "time_to_minimum",
    "time_to_recovery",
    "rapidity",
    "recovery_ratio",
    "POINT_METRICS",
]


def _phases(curve: ResilienceCurve, phases: ResiliencePhases | None) -> ResiliencePhases:
    return phases if phases is not None else detect_phases(curve)


def robustness(curve: ResilienceCurve, phases: ResiliencePhases | None = None) -> float:
    """Minimum performance as a fraction of nominal (1 = unaffected).

    The classic "how low did it go" metric.
    """
    if curve.nominal == 0.0:
        raise MetricError("robustness undefined for zero nominal performance")
    return curve.min_performance / curve.nominal


def depth(curve: ResilienceCurve, phases: ResiliencePhases | None = None) -> float:
    """Fractional performance drop at the trough (``1 − robustness``)."""
    return 1.0 - robustness(curve)


def time_to_minimum(
    curve: ResilienceCurve, phases: ResiliencePhases | None = None
) -> float:
    """Elapsed time from hazard onset to the trough (``t_d − t_h``)."""
    p = _phases(curve, phases)
    return p.degradation_duration


def time_to_recovery(
    curve: ResilienceCurve, phases: ResiliencePhases | None = None
) -> float:
    """Elapsed time from hazard onset to recovery (``t_r − t_h``).

    Raises
    ------
    MetricError
        If the curve never recovers within the observation window —
        callers should fall back to a fitted model's
        :meth:`~repro.models.base.ResilienceModel.recovery_time`.
    """
    p = _phases(curve, phases)
    if p.total_disruption_duration is None:
        raise MetricError(
            f"curve {curve.name or '<unnamed>'} does not recover within the "
            f"observation window"
        )
    return p.total_disruption_duration


def rapidity(curve: ResilienceCurve, phases: ResiliencePhases | None = None) -> float:
    """Average recovery slope from the trough to recovery (or to the end
    of the window when unrecovered): performance regained per unit time.
    """
    p = _phases(curve, phases)
    end_time = p.recovery_time if p.recovery_time is not None else float(curve.times[-1])
    span = end_time - p.trough_time
    if span <= 0.0:
        raise MetricError("rapidity undefined: no time elapsed after the trough")
    end_value = float(curve.performance_at([end_time])[0])
    return (end_value - curve.min_performance) / span


def recovery_ratio(
    curve: ResilienceCurve, phases: ResiliencePhases | None = None
) -> float:
    """Fraction of the lost performance regained by the end of the
    window: ``(P(t_end) − P(t_d)) / (P(t_h) − P(t_d))``.

    1.0 means full recovery to the pre-hazard level; values above 1.0
    mean improvement beyond it (the paper's "improved performance"
    outcome); 0 means no recovery at all.
    """
    p = _phases(curve, phases)
    hazard_level = float(curve.performance_at([p.hazard_time])[0])
    lost = hazard_level - curve.min_performance
    if lost <= 0.0:
        raise MetricError("recovery ratio undefined: no performance was lost")
    regained = curve.final_performance - curve.min_performance
    return regained / lost


#: Registry of point-based metrics.
POINT_METRICS: dict[str, Callable[..., float]] = {
    "robustness": robustness,
    "depth": depth,
    "time_to_minimum": time_to_minimum,
    "time_to_recovery": time_to_recovery,
    "rapidity": rapidity,
    "recovery_ratio": recovery_ratio,
}
