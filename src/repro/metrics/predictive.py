"""Predictive application of the interval metrics — Section IV protocol.

To apply the metrics in a predictive manner, the paper replaces ``t_h``
with the first time interval not used for model fitting
(``t_{n−ℓ+1}``) and sets ``t_r`` to the last interval ``t_n``. The
trough ``t_d`` is the observed minimum when it lies within the data and
the model's predicted minimum otherwise; Eq. (21) spans the entire
record. Each metric is evaluated twice — from the empirical curve
("Actual") and from the fitted model ("Predicted") — and compared with
the Eq. (22) relative error, producing Tables II and IV.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.curve import ResilienceCurve
from repro.exceptions import MetricError
from repro.metrics.interval import METRICS, MetricContext
from repro.models.base import ResilienceModel
from repro.utils.tables import format_table

__all__ = [
    "relative_error",
    "MetricComparison",
    "PredictiveMetricReport",
    "predictive_metric_report",
]


def relative_error(actual: float, predicted: float) -> float:
    """Eq. (22): ``|R_actual − R_predicted| / |R_actual|``.

    Raises
    ------
    MetricError
        If the actual value is zero (the error is undefined).
    """
    if actual == 0.0:
        raise MetricError("relative error undefined for zero actual value")
    return abs(actual - predicted) / abs(actual)


@dataclass(frozen=True)
class MetricComparison:
    """One row of Table II/IV: a metric's actual and predicted values."""

    name: str
    actual: float
    predicted: float

    @property
    def delta(self) -> float:
        """Eq. (22) relative error, or NaN when the actual value is 0."""
        if self.actual == 0.0:
            return float("nan")
        return relative_error(self.actual, self.predicted)


@dataclass(frozen=True)
class PredictiveMetricReport:
    """All eight metric comparisons for one model on one curve."""

    curve_name: str
    model_name: str
    hazard_time: float
    recovery_time: float
    trough_time: float
    alpha: float
    rows: tuple[MetricComparison, ...]

    def row(self, metric_name: str) -> MetricComparison:
        """Look up one comparison by metric name."""
        for comparison in self.rows:
            if comparison.name == metric_name:
                return comparison
        known = ", ".join(r.name for r in self.rows)
        raise MetricError(f"unknown metric {metric_name!r}; known: {known}")

    def to_table(self) -> str:
        """Aligned text table in the paper's Table II/IV layout."""
        headers = ["Metric", "Actual", "Predicted", "delta"]
        table_rows = [
            [comparison.name, comparison.actual, comparison.predicted, comparison.delta]
            for comparison in self.rows
        ]
        title = (
            f"Interval metrics — model {self.model_name} on {self.curve_name} "
            f"(window [{self.hazard_time:g}, {self.recovery_time:g}], "
            f"alpha={self.alpha})"
        )
        return format_table(headers, table_rows, title=title)


def predictive_metric_report(
    model: ResilienceModel,
    full_curve: ResilienceCurve,
    split_time: float,
    *,
    alpha: float = 0.5,
) -> PredictiveMetricReport:
    """Compute all eight metrics over the predictive window.

    Parameters
    ----------
    model:
        A *bound* (fitted) model; typically
        ``evaluate_predictive(...).model``.
    full_curve:
        The complete empirical curve (fitting + held-out windows).
    split_time:
        First held-out time stamp — becomes ``t_h``.
    alpha:
        Weight of Eq. (21); the paper uses 0.5.

    Raises
    ------
    MetricError
        If *split_time* is not strictly inside the curve's time span.
    """
    t0 = float(full_curve.times[0])
    t_end = float(full_curve.times[-1])
    if not t0 <= split_time < t_end:
        raise MetricError(
            f"split_time {split_time} outside curve span [{t0}, {t_end})"
        )

    # Section IV trough rule: when the minimum is contained within the
    # observed data (strictly interior), that observed value is used —
    # by both the actual and the predicted context; otherwise the
    # minimum predicted by the fitted model is used.
    trough_index = int(np.argmin(full_curve.performance))
    trough_observed = 0 < trough_index < len(full_curve) - 1
    if trough_observed:
        trough_time = float(full_curve.times[trough_index])
    else:
        trough_time, _ = model.minimum(t_end)
        trough_time = min(max(trough_time, t0), t_end)

    actual_ctx = MetricContext.from_curve(
        full_curve,
        hazard_time=split_time,
        recovery_time=t_end,
        trough_time=trough_time,
    )
    predicted_ctx = MetricContext.from_model(
        model,
        hazard_time=split_time,
        recovery_time=t_end,
        trough_time=trough_time,
        start_time=t0,
    )
    if trough_observed:
        predicted_ctx = replace(predicted_ctx, trough_value=actual_ctx.trough_value)

    rows: list[MetricComparison] = []
    for name, metric in METRICS.items():
        kwargs = {"alpha": alpha} if name == "weighted_average_preserved" else {}
        # A trough pinned to a window edge (e.g. a still-falling curve)
        # makes the from-minimum and weighted metrics degenerate; those
        # rows are reported as NaN rather than aborting the table.
        try:
            actual = float(metric(actual_ctx, **kwargs))
            predicted = float(metric(predicted_ctx, **kwargs))
        except MetricError:
            actual = predicted = float("nan")
        rows.append(MetricComparison(name=name, actual=actual, predicted=predicted))
    return PredictiveMetricReport(
        curve_name=full_curve.name or "<curve>",
        model_name=model.name,
        hazard_time=split_time,
        recovery_time=t_end,
        trough_time=trough_time,
        alpha=alpha,
        rows=tuple(rows),
    )
