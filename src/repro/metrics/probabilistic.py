"""Probabilistic resilience metrics.

The third category in the taxonomy the paper cites (Cheng et al.):
metrics that are probabilities or distributions rather than areas or
points. Here they are computed from a *fitted* model plus its parameter
uncertainty (:mod:`repro.fitting.uncertainty`), answering the questions
an emergency manager actually asks:

* "What is the probability we are back to 95% capacity by Friday?"
* "Give me the 90th-percentile recovery date."
* "What is the distribution of performance at time t?"
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MetricError
from repro.fitting.result import FitResult
from repro.fitting.uncertainty import parameter_uncertainty

__all__ = [
    "recovery_probability_by",
    "recovery_time_quantile",
    "performance_distribution_at",
]


def _recovery_samples(
    fit: FitResult,
    level: float,
    *,
    horizon: float,
    n_samples: int,
    seed: int,
) -> np.ndarray:
    """Recovery-time draws under the asymptotic parameter distribution.

    Draws that never recover before *horizon* are recorded as ``inf``.
    """
    if n_samples < 10:
        raise MetricError(f"n_samples must be >= 10, got {n_samples}")
    uncertainty = parameter_uncertainty(fit)
    model = fit.model
    params = np.asarray(model.params, dtype=np.float64)
    rng = np.random.default_rng(seed)
    draws = rng.multivariate_normal(
        params, uncertainty.covariance, size=n_samples, method="svd",
        check_valid="ignore",
    )
    draws = np.clip(draws, model.lower_bounds, model.upper_bounds)
    samples = np.empty(n_samples)
    for index, draw in enumerate(draws):
        try:
            samples[index] = model.bind(tuple(draw)).recovery_time(level, horizon)
        except ValueError:
            samples[index] = np.inf
    return samples


def recovery_probability_by(
    fit: FitResult,
    level: float,
    deadline: float,
    *,
    horizon: float = 1e4,
    n_samples: int = 400,
    seed: int = 0,
) -> float:
    """Probability that performance recovers to *level* by *deadline*.

    Monte-Carlo over the fit's asymptotic parameter distribution:
    the fraction of parameter draws whose recovery time is at most
    *deadline*.
    """
    if deadline <= 0.0:
        raise MetricError(f"deadline must be positive, got {deadline}")
    samples = _recovery_samples(
        fit, level, horizon=horizon, n_samples=n_samples, seed=seed
    )
    return float(np.mean(samples <= deadline))


def recovery_time_quantile(
    fit: FitResult,
    level: float,
    quantile: float,
    *,
    horizon: float = 1e4,
    n_samples: int = 400,
    seed: int = 0,
) -> float:
    """The *quantile* of the recovery-time distribution.

    Returns ``inf`` when that quantile of draws never recovers before
    *horizon* — a conservative planning answer, not an error.

    Raises
    ------
    MetricError
        If *quantile* is outside (0, 1).
    """
    if not 0.0 < quantile < 1.0:
        raise MetricError(f"quantile must lie in (0, 1), got {quantile}")
    samples = _recovery_samples(
        fit, level, horizon=horizon, n_samples=n_samples, seed=seed
    )
    # The conservative (higher) order statistic: linear interpolation
    # between a finite draw and an unrecovered (inf) draw would be NaN,
    # and rounding the planning answer *later* is the safe direction.
    return float(np.quantile(samples, quantile, method="higher"))


def performance_distribution_at(
    fit: FitResult,
    time: float,
    *,
    n_samples: int = 400,
    seed: int = 0,
    include_noise: bool = True,
) -> np.ndarray:
    """Monte-Carlo samples of performance at *time*.

    Combines parameter uncertainty with (optionally) the residual
    observation noise; summarize with ``np.quantile`` for fan charts.
    """
    if n_samples < 10:
        raise MetricError(f"n_samples must be >= 10, got {n_samples}")
    uncertainty = parameter_uncertainty(fit)
    model = fit.model
    params = np.asarray(model.params, dtype=np.float64)
    rng = np.random.default_rng(seed)
    draws = rng.multivariate_normal(
        params, uncertainty.covariance, size=n_samples, method="svd",
        check_valid="ignore",
    )
    draws = np.clip(draws, model.lower_bounds, model.upper_bounds)
    t = np.array([float(time)])
    values = np.array([float(model.evaluate(t, tuple(d))[0]) for d in draws])
    if include_noise:
        sigma = float(np.sqrt(max(uncertainty.sigma2, 0.0)))
        values = values + rng.normal(0.0, sigma, size=n_samples)
    return values
