"""Exponential lifetime distribution.

The paper obtains the exponential as the Weibull with shape k = 1
(Eq. 23). It is the memoryless baseline of the mixture experiments and
the component of the uniformly-poor "Exp-Exp" pairing in Table III.
"""

from __future__ import annotations

import math
from typing import ClassVar

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.distributions.base import LifetimeDistribution
from repro.utils.numerics import as_float_array, safe_exp

__all__ = ["Exponential"]


class Exponential(LifetimeDistribution):
    """Exponential distribution with scale ``theta`` (mean ``theta``).

    ``F(t) = 1 − exp(−t/θ)`` for ``t ≥ 0``.
    """

    name: ClassVar[str] = "exponential"
    param_names: ClassVar[tuple[str, ...]] = ("theta",)
    param_lower_bounds: ClassVar[tuple[float, ...]] = (1e-8,)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (1e8,)

    def __init__(self, theta: float) -> None:
        super().__init__()
        self.theta = self._require_positive("theta", theta)

    def pdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        density = safe_exp(-t / self.theta) / self.theta
        return np.where(t < 0.0, 0.0, density)

    def cdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.where(t < 0.0, 0.0, -np.expm1(-np.maximum(t, 0.0) / self.theta))

    def sf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.where(t < 0.0, 1.0, safe_exp(-np.maximum(t, 0.0) / self.theta))

    def cdf_gradient(self, times: ArrayLike) -> FloatArray:
        """``∂F/∂θ = −(t/θ²)·e^{−t/θ}`` as an ``(n, 1)`` column."""
        t = as_float_array(times, "times")
        clipped = np.maximum(t, 0.0)
        column = -(clipped / (self.theta * self.theta)) * safe_exp(
            -clipped / self.theta
        )
        return np.where(t < 0.0, 0.0, column)[:, np.newaxis]

    @classmethod
    def cdf_batch(cls, times: FloatArray, params: FloatArray) -> FloatArray:
        """Stacked CDF: row ``b`` is ``Exponential(params[b]).cdf(times[b])``.

        *times* has shape ``(B, n)``, *params* shape ``(B, 1)``.
        """
        t = np.asarray(times, dtype=np.float64)
        theta = np.asarray(params, dtype=np.float64)[:, :1]
        with np.errstate(divide="ignore", invalid="ignore"):
            column = -np.expm1(-np.maximum(t, 0.0) / theta)
        return np.where(t < 0.0, 0.0, column)

    @classmethod
    def cdf_gradient_batch(cls, times: FloatArray, params: FloatArray) -> FloatArray:
        """Stacked :meth:`cdf_gradient`, shape ``(B, n, 1)``."""
        t = np.asarray(times, dtype=np.float64)
        theta = np.asarray(params, dtype=np.float64)[:, :1]
        clipped = np.maximum(t, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            column = -(clipped / (theta * theta)) * safe_exp(-clipped / theta)
        return np.where(t < 0.0, 0.0, column)[:, :, np.newaxis]

    def hazard(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.where(t < 0.0, 0.0, np.full_like(t, 1.0 / self.theta))

    def cumulative_hazard(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.maximum(t, 0.0) / self.theta

    def quantile(self, probabilities: ArrayLike) -> FloatArray:
        probs = as_float_array(probabilities, "probabilities")
        if np.any((probs < 0.0) | (probs >= 1.0)):
            raise ValueError("probabilities must lie in [0, 1)")
        return -self.theta * np.log1p(-probs)

    def mean(self) -> float:
        return self.theta

    def variance(self) -> float:
        return self.theta * self.theta

    def median(self) -> float:
        return self.theta * math.log(2.0)
