"""Registry mapping distribution names to classes.

Mixture models are configured by distribution *name* in experiment
specifications and on the CLI, so the registry is the single place new
distributions must be added to become available everywhere.
"""

from __future__ import annotations

from typing import Type

from repro.distributions.base import LifetimeDistribution
from repro.exceptions import ParameterError

__all__ = [
    "register_distribution",
    "get_distribution_class",
    "available_distributions",
]

_REGISTRY: dict[str, Type[LifetimeDistribution]] = {}


def register_distribution(cls: Type[LifetimeDistribution]) -> Type[LifetimeDistribution]:
    """Register *cls* under its :attr:`name`; usable as a decorator.

    Re-registering the same class under the same name is a no-op;
    registering a different class under an existing name raises.
    """
    name = cls.name
    if not name or name == "abstract":
        raise ParameterError(f"{cls.__name__} has no registry name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ParameterError(f"distribution name {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def get_distribution_class(name: str) -> Type[LifetimeDistribution]:
    """Look up a distribution class by registry name.

    Accepts a few common aliases (``"exp"``, ``"wei"``) used in the
    paper's model labels (Exp-Exp, Wei-Exp, ...).
    """
    aliases = {"exp": "exponential", "wei": "weibull", "weib": "weibull"}
    key = aliases.get(name.lower(), name.lower())
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ParameterError(f"unknown distribution {name!r}; known: {known}") from None


def available_distributions() -> tuple[str, ...]:
    """Sorted names of all registered distributions."""
    return tuple(sorted(_REGISTRY))


def _register_builtins() -> None:
    from repro.distributions.exponential import Exponential
    from repro.distributions.weibull import Weibull
    from repro.distributions.gamma import Gamma
    from repro.distributions.lognormal import Lognormal
    from repro.distributions.gompertz import Gompertz
    from repro.distributions.loglogistic import LogLogistic

    for cls in (Exponential, Weibull, Gamma, Lognormal, Gompertz, LogLogistic):
        register_distribution(cls)


_register_builtins()
