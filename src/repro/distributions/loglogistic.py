"""Log-logistic lifetime distribution (extension beyond the paper's pairings).

Its hazard is unimodal for shape > 1 — rising then falling — which suits
recovery processes that accelerate and then taper.
"""

from __future__ import annotations

import math
from typing import ClassVar

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.distributions.base import LifetimeDistribution
from repro.utils.numerics import as_float_array

__all__ = ["LogLogistic"]


class LogLogistic(LifetimeDistribution):
    """Log-logistic distribution with scale ``alpha`` and shape ``beta``.

    ``F(t) = 1 / (1 + (t/α)^{−β})``.
    """

    name: ClassVar[str] = "loglogistic"
    param_names: ClassVar[tuple[str, ...]] = ("alpha", "beta")
    param_lower_bounds: ClassVar[tuple[float, ...]] = (1e-8, 1e-3)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (1e8, 100.0)

    def __init__(self, alpha: float, beta: float) -> None:
        super().__init__()
        self.alpha = self._require_positive("alpha", alpha)
        self.beta = self._require_positive("beta", beta)

    def cdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        positive = t > 0.0
        tp = np.where(positive, t, 1.0)
        z = np.power(tp / self.alpha, self.beta)
        return np.where(positive, z / (1.0 + z), 0.0)

    def pdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        positive = t > 0.0
        tp = np.where(positive, t, 1.0)
        z = np.power(tp / self.alpha, self.beta)
        density = (self.beta / self.alpha) * np.power(tp / self.alpha, self.beta - 1.0)
        density = density / np.square(1.0 + z)
        if self.beta < 1.0:
            at_zero = np.inf
        elif self.beta == 1.0:
            at_zero = 1.0 / self.alpha
        else:
            at_zero = 0.0
        return np.where(positive, density, np.where(t == 0.0, at_zero, 0.0))

    def quantile(self, probabilities: ArrayLike) -> FloatArray:
        probs = as_float_array(probabilities, "probabilities")
        if np.any((probs < 0.0) | (probs >= 1.0)):
            raise ValueError("probabilities must lie in [0, 1)")
        with np.errstate(divide="ignore", over="ignore"):
            odds = probs / (1.0 - probs)
            quantiles = self.alpha * np.power(odds, 1.0 / self.beta)
        return quantiles

    def mean(self) -> float:
        if self.beta <= 1.0:
            raise ValueError("log-logistic mean is undefined for beta <= 1")
        b = math.pi / self.beta
        # beta > 1 (checked above) puts b in (0, pi), where sin(b) > 0.
        return self.alpha * b / math.sin(b)  # repro-lint: disable=R9

    def median(self) -> float:
        return self.alpha
