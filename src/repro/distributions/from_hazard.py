"""Lifetime distributions induced by hazard functions.

Classical reliability theory ties the two substrates of this library
together: any hazard rate ``λ(t)`` with cumulative ``Λ(t)`` induces a
lifetime distribution with survival ``S(t) = exp(−Λ(t))``. This module
makes that bridge executable — in particular it turns the paper's
Hjorth competing-risks *rate* (Eq. 4) into Hjorth's actual 1980
*distribution*:

    S(t) = exp(−γt²) · (1 + βt)^{−α/β}

so the bathtub shapes used for curve fitting can also generate
failure times for the simulators.
"""

from __future__ import annotations

from typing import ClassVar, Sequence

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.distributions.base import LifetimeDistribution
from repro.exceptions import ParameterError
from repro.hazards.base import HazardFunction
from repro.utils.numerics import as_float_array, safe_exp

__all__ = ["HazardInducedDistribution"]


class HazardInducedDistribution(LifetimeDistribution):
    """The lifetime distribution with survival ``exp(−Λ(t))``.

    Parameters
    ----------
    hazard:
        Any :class:`~repro.hazards.base.HazardFunction`. Its
        :meth:`cumulative` must grow without bound for the induced
        distribution to be proper (i.e. ``cdf → 1``); a hazard whose
        integral saturates (e.g. a clipped decreasing linear rate)
        yields a *defective* distribution, which is rejected eagerly.

    Notes
    -----
    The instance exposes the hazard's parameters through the usual
    distribution metadata, so property-based distribution tests apply
    unchanged.
    """

    name: ClassVar[str] = "hazard_induced"

    def __init__(self, hazard: HazardFunction, *, properness_horizon: float = 1e6) -> None:
        if not isinstance(hazard, HazardFunction):
            raise ParameterError(
                f"hazard must be a HazardFunction, got {type(hazard).__name__}"
            )
        cumulative_far = float(hazard.cumulative(np.array([properness_horizon]))[0])
        if cumulative_far < 30.0:  # exp(−30) ≈ 1e−13: effectively proper
            raise ParameterError(
                f"hazard {hazard!r} induces a defective distribution: "
                f"Λ({properness_horizon:g}) = {cumulative_far:.3g} does not diverge"
            )
        self._hazard = hazard
        # Mirror the hazard's parameter metadata on the instance.
        self.param_names = hazard.param_names  # type: ignore[misc]
        self.param_lower_bounds = hazard.param_lower_bounds  # type: ignore[misc]
        self.param_upper_bounds = hazard.param_upper_bounds  # type: ignore[misc]
        for pname in hazard.param_names:
            setattr(self, pname, getattr(hazard, pname))
        super().__init__()

    @classmethod
    def from_vector(cls, vector: Sequence[float]) -> "LifetimeDistribution":  # noqa: D102 - see raise message
        raise ParameterError(
            "HazardInducedDistribution cannot be built from a bare vector; "
            "construct the hazard first: "
            "HazardInducedDistribution(SomeHazard.from_vector(vector))"
        )

    @property
    def hazard_function(self) -> HazardFunction:
        """The inducing hazard."""
        return self._hazard

    def sf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        survival = safe_exp(-self._hazard.cumulative(np.maximum(t, 0.0)))
        return np.where(t < 0.0, 1.0, survival)

    def cdf(self, times: ArrayLike) -> FloatArray:
        return 1.0 - self.sf(times)

    def pdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        rate = self._hazard.rate(np.maximum(t, 0.0))
        density = rate * self.sf(t)
        return np.where(t < 0.0, 0.0, density)

    def hazard(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.where(t < 0.0, 0.0, self._hazard.rate(np.maximum(t, 0.0)))

    def cumulative_hazard(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return self._hazard.cumulative(np.maximum(t, 0.0))

    def __repr__(self) -> str:
        return f"HazardInducedDistribution({self._hazard!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HazardInducedDistribution):
            return NotImplemented
        return (
            type(self._hazard) is type(other._hazard)
            and self._hazard.param_vector == other._hazard.param_vector
        )

    def __hash__(self) -> int:
        return hash((type(self._hazard).__name__, self._hazard.param_vector))
