"""Lognormal lifetime distribution (extension beyond the paper's pairings)."""

from __future__ import annotations

import math
from typing import ClassVar

import numpy as np
from scipy import special

from repro._typing import ArrayLike, FloatArray
from repro.distributions.base import LifetimeDistribution
from repro.utils.numerics import as_float_array

__all__ = ["Lognormal"]

_SQRT2 = math.sqrt(2.0)


class Lognormal(LifetimeDistribution):
    """Lognormal distribution: ``log T ~ Normal(mu, sigma²)``."""

    name: ClassVar[str] = "lognormal"
    param_names: ClassVar[tuple[str, ...]] = ("mu", "sigma")
    param_lower_bounds: ClassVar[tuple[float, ...]] = (-20.0, 1e-4)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (20.0, 20.0)

    def __init__(self, mu: float, sigma: float) -> None:
        super().__init__()
        self.mu = self._require_finite("mu", mu)
        self.sigma = self._require_positive("sigma", sigma)

    def pdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        positive = t > 0.0
        out = np.zeros_like(t)
        tp = np.where(positive, t, 1.0)
        z = (np.log(tp) - self.mu) / self.sigma
        out[positive] = (
            np.exp(-0.5 * z * z) / (tp * self.sigma * math.sqrt(2.0 * math.pi))
        )[positive]
        return out

    def cdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        positive = t > 0.0
        tp = np.where(positive, t, 1.0)
        z = (np.log(tp) - self.mu) / (self.sigma * _SQRT2)
        values = 0.5 * (1.0 + special.erf(z))
        return np.where(positive, values, 0.0)

    def quantile(self, probabilities: ArrayLike) -> FloatArray:
        probs = as_float_array(probabilities, "probabilities")
        if np.any((probs < 0.0) | (probs >= 1.0)):
            raise ValueError("probabilities must lie in [0, 1)")
        z = _SQRT2 * special.erfinv(2.0 * probs - 1.0)
        return np.where(probs == 0.0, 0.0, np.exp(self.mu + self.sigma * z))

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma * self.sigma)

    def variance(self) -> float:
        s2 = self.sigma * self.sigma
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    def median(self) -> float:
        return math.exp(self.mu)
