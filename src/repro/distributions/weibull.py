"""Weibull lifetime distribution (Eq. 23 of the paper).

``F(t) = 1 − exp(−(t/θ)^k)``. Shape ``k`` controls whether the hazard
is decreasing (k < 1), constant (k = 1, exponential), or increasing
(k > 1) — the flexibility that makes the Wei-Exp, Exp-Wei, and Wei-Wei
mixtures outperform Exp-Exp in Table III.
"""

from __future__ import annotations

import math
from typing import ClassVar

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.distributions.base import LifetimeDistribution
from repro.utils.numerics import as_float_array, safe_exp

__all__ = ["Weibull"]


class Weibull(LifetimeDistribution):
    """Weibull distribution with scale ``theta`` and shape ``k``."""

    name: ClassVar[str] = "weibull"
    param_names: ClassVar[tuple[str, ...]] = ("theta", "k")
    param_lower_bounds: ClassVar[tuple[float, ...]] = (1e-8, 1e-3)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (1e8, 50.0)

    def __init__(self, theta: float, k: float) -> None:
        super().__init__()
        self.theta = self._require_positive("theta", theta)
        self.k = self._require_positive("k", k)

    def _z(self, t: FloatArray) -> FloatArray:
        """Standardized variable ``(t/θ)^k`` with t clipped to ≥ 0.

        Overflow to ``inf`` is deliberate: it propagates to cdf = 1 /
        sf = 0 through ``expm1``/``safe_exp`` exactly as the limit
        demands, so the warning is suppressed rather than guarded.
        """
        scaled = np.maximum(t, 0.0) / self.theta
        with np.errstate(divide="ignore", over="ignore"):
            return np.power(scaled, self.k)

    def pdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        z = self._z(t)
        with np.errstate(divide="ignore", invalid="ignore"):
            scaled = np.maximum(t, 0.0) / self.theta
            # (k/θ) z^{(k−1)/k} e^{−z}; write via scaled^(k−1) for stability.
            density = (self.k / self.theta) * np.power(scaled, self.k - 1.0) * safe_exp(-z)
        density = np.where(t < 0.0, 0.0, density)
        if self.k < 1.0:
            density = np.where(t == 0.0, np.inf, density)
        elif self.k == 1.0:
            density = np.where(t == 0.0, 1.0 / self.theta, density)
        else:
            density = np.where(t == 0.0, 0.0, density)
        return density

    def cdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.where(t < 0.0, 0.0, -np.expm1(-self._z(t)))

    def sf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.where(t < 0.0, 1.0, safe_exp(-self._z(t)))

    def cumulative_hazard(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return self._z(t)

    def cdf_gradient(self, times: ArrayLike) -> FloatArray:
        """``(∂F/∂θ, ∂F/∂k) = (−(k/θ)·z·e^{−z}, ln(t/θ)·z·e^{−z})``.

        Both derivatives share the factor ``z·e^{−z}`` which vanishes in
        either tail (z → 0 and z → ∞), so the gradient is zeroed where
        ``z`` overflows and at ``t ≤ 0``.
        """
        t = as_float_array(times, "times")
        scaled = np.maximum(t, 0.0) / self.theta
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            z = np.power(scaled, self.k)
            decay = np.where(np.isfinite(z), z * safe_exp(-z), 0.0)
            log_scaled = np.log(np.where(scaled > 0.0, scaled, 1.0))
        gradient = np.stack(
            [-(self.k / self.theta) * decay, log_scaled * decay], axis=1
        )
        return np.where((t > 0.0)[:, np.newaxis], gradient, 0.0)

    @classmethod
    def cdf_batch(cls, times: FloatArray, params: FloatArray) -> FloatArray:
        """Stacked CDF: row ``b`` is ``Weibull(*params[b]).cdf(times[b])``.

        *times* has shape ``(B, n)``, *params* shape ``(B, 2)`` in the
        canonical ``(theta, k)`` order.
        """
        t = np.asarray(times, dtype=np.float64)
        p = np.asarray(params, dtype=np.float64)
        theta = p[:, :1]
        k = p[:, 1:2]
        with np.errstate(divide="ignore", over="ignore"):
            scaled = np.maximum(t, 0.0) / theta
            z = np.power(scaled, k)
        return np.where(t < 0.0, 0.0, -np.expm1(-z))

    @classmethod
    def cdf_gradient_batch(cls, times: FloatArray, params: FloatArray) -> FloatArray:
        """Stacked :meth:`cdf_gradient`, shape ``(B, n, 2)``."""
        t = np.asarray(times, dtype=np.float64)
        p = np.asarray(params, dtype=np.float64)
        theta = p[:, :1]
        k = p[:, 1:2]
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            scaled = np.maximum(t, 0.0) / theta
            z = np.power(scaled, k)
            decay = np.where(np.isfinite(z), z * safe_exp(-z), 0.0)
            log_scaled = np.log(np.where(scaled > 0.0, scaled, 1.0))
            gradient = np.stack(
                [-(k / theta) * decay, log_scaled * decay], axis=2
            )
        return np.where((t > 0.0)[:, :, np.newaxis], gradient, 0.0)

    def quantile(self, probabilities: ArrayLike) -> FloatArray:
        probs = as_float_array(probabilities, "probabilities")
        if np.any((probs < 0.0) | (probs >= 1.0)):
            raise ValueError("probabilities must lie in [0, 1)")
        # -log1p(-p) >= 0 for the validated p in [0, 1) and 1/k > 0, so
        # the power is total here.
        return self.theta * np.power(-np.log1p(-probs), 1.0 / self.k)  # repro-lint: disable=R9

    def mean(self) -> float:
        return self.theta * math.gamma(1.0 + 1.0 / self.k)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.k)
        g2 = math.gamma(1.0 + 2.0 / self.k)
        return self.theta * self.theta * (g2 - g1 * g1)

    def median(self) -> float:
        return self.theta * math.log(2.0) ** (1.0 / self.k)
