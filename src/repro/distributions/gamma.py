"""Gamma lifetime distribution (extension beyond the paper's pairings)."""

from __future__ import annotations

from typing import ClassVar

import numpy as np
from scipy import special, stats

from repro._typing import ArrayLike, FloatArray
from repro.distributions.base import LifetimeDistribution
from repro.utils.numerics import as_float_array

__all__ = ["Gamma"]


class Gamma(LifetimeDistribution):
    """Gamma distribution with shape ``k`` and scale ``theta``.

    ``F(t) = γ(k, t/θ) / Γ(k)`` (regularized lower incomplete gamma).
    """

    name: ClassVar[str] = "gamma"
    param_names: ClassVar[tuple[str, ...]] = ("k", "theta")
    param_lower_bounds: ClassVar[tuple[float, ...]] = (1e-3, 1e-8)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (1e3, 1e8)

    def __init__(self, k: float, theta: float) -> None:
        super().__init__()
        self.k = self._require_positive("k", k)
        self.theta = self._require_positive("theta", theta)

    def pdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        density = stats.gamma.pdf(np.maximum(t, 0.0), a=self.k, scale=self.theta)
        return np.where(t < 0.0, 0.0, density)

    def cdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.where(
            t < 0.0, 0.0, special.gammainc(self.k, np.maximum(t, 0.0) / self.theta)
        )

    def quantile(self, probabilities: ArrayLike) -> FloatArray:
        probs = as_float_array(probabilities, "probabilities")
        if np.any((probs < 0.0) | (probs >= 1.0)):
            raise ValueError("probabilities must lie in [0, 1)")
        return self.theta * special.gammaincinv(self.k, probs)

    def mean(self) -> float:
        return self.k * self.theta

    def variance(self) -> float:
        return self.k * self.theta * self.theta
