"""Abstract base class for lifetime distributions.

Concrete subclasses implement :meth:`cdf` and :meth:`pdf` (plus
parameter metadata); the base class derives the survival function,
hazard rate, cumulative hazard, and a bisection-based quantile fallback
from those. Subclasses override the derived quantities whenever a
closed form exists.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Sequence

import numpy as np

from repro._rng import resolve_rng
from repro._typing import ArrayLike, FloatArray
from repro.exceptions import ParameterError
from repro.utils.numerics import as_float_array, clip_positive

__all__ = ["LifetimeDistribution"]


class LifetimeDistribution(abc.ABC):
    """A non-negative continuous random variable ("time to event").

    Subclasses define class attributes :attr:`name`, :attr:`param_names`,
    and per-parameter lower/upper fitting bounds, then implement
    :meth:`pdf` and :meth:`cdf`. All time inputs are vectorized;
    negative times are valid inputs and map to pdf 0 / cdf 0.
    """

    #: Short registry name, e.g. ``"weibull"``.
    name: ClassVar[str] = "abstract"

    #: Canonical parameter order for vectorized construction.
    param_names: ClassVar[tuple[str, ...]] = ()

    #: Per-parameter lower bounds used by fitting code (same order).
    param_lower_bounds: ClassVar[tuple[float, ...]] = ()

    #: Per-parameter upper bounds used by fitting code (same order).
    param_upper_bounds: ClassVar[tuple[float, ...]] = ()

    def __init__(self) -> None:
        if len(self.param_names) != len(self.param_lower_bounds) or len(
            self.param_names
        ) != len(self.param_upper_bounds):
            raise ParameterError(
                f"{type(self).__name__}: parameter metadata lengths disagree"
            )

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    @property
    def params(self) -> dict[str, float]:
        """Parameter values keyed by name, in canonical order."""
        return {name: float(getattr(self, name)) for name in self.param_names}

    @property
    def param_vector(self) -> tuple[float, ...]:
        """Parameter values as a flat tuple in canonical order."""
        return tuple(float(getattr(self, name)) for name in self.param_names)

    @classmethod
    def from_vector(cls, vector: Sequence[float]) -> "LifetimeDistribution":
        """Construct from a flat parameter vector in canonical order."""
        if len(vector) != len(cls.param_names):
            raise ParameterError(
                f"{cls.__name__} expects {len(cls.param_names)} parameters, "
                f"got {len(vector)}"
            )
        return cls(**dict(zip(cls.param_names, (float(v) for v in vector))))

    @classmethod
    def n_params(cls) -> int:
        """Number of free parameters."""
        return len(cls.param_names)

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v:.6g}" for k, v in self.params.items())
        return f"{type(self).__name__}({args})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LifetimeDistribution):
            return NotImplemented
        return type(self) is type(other) and self.param_vector == other.param_vector

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.param_vector))

    # ------------------------------------------------------------------
    # Core quantities (subclass responsibility)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pdf(self, times: ArrayLike) -> FloatArray:
        """Probability density at *times* (0 for negative times)."""

    @abc.abstractmethod
    def cdf(self, times: ArrayLike) -> FloatArray:
        """Cumulative probability ``P(T <= t)`` (0 for negative times)."""

    # ------------------------------------------------------------------
    # Optional analytic-derivative protocol
    # ------------------------------------------------------------------
    # Subclasses whose CDF has elementary parameter derivatives define
    #
    #     def cdf_gradient(self, times) -> FloatArray   # (n, n_params)
    #
    # returning ``∂F(t)/∂θⱼ`` column-per-parameter in canonical order.
    # The mixture resilience model uses it to assemble a closed-form fit
    # Jacobian; families built from distributions without it fall back
    # to finite differences. Test for support with
    # :meth:`has_cdf_gradient`.
    @classmethod
    def has_cdf_gradient(cls) -> bool:
        """Whether this family implements the analytic ``cdf_gradient``."""
        return callable(getattr(cls, "cdf_gradient", None))

    # ------------------------------------------------------------------
    # Optional batched-evaluation protocol
    # ------------------------------------------------------------------
    # Subclasses that can evaluate a *stack* of parameterizations in one
    # vectorized expression define the classmethods
    #
    #     def cdf_batch(cls, times, params) -> FloatArray          # (B, n)
    #     def cdf_gradient_batch(cls, times, params) -> FloatArray # (B, n, k)
    #
    # where row ``b`` of ``times`` (shape ``(B, n)``) and ``params``
    # (shape ``(B, n_params)``) describes one independent problem. The
    # batched LM fit engine uses them to evaluate every multi-start
    # problem in one numpy call; mixtures over distributions without the
    # protocol fall back to a per-row loop. Test for support with
    # :meth:`has_batch_cdf`.
    @classmethod
    def has_batch_cdf(cls) -> bool:
        """Whether this family implements the vectorized ``cdf_batch`` /
        ``cdf_gradient_batch`` pair."""
        return callable(getattr(cls, "cdf_batch", None)) and callable(
            getattr(cls, "cdf_gradient_batch", None)
        )

    # ------------------------------------------------------------------
    # Derived quantities (overridable with closed forms)
    # ------------------------------------------------------------------
    def sf(self, times: ArrayLike) -> FloatArray:
        """Survival (reliability) function ``1 - cdf``."""
        return 1.0 - self.cdf(times)

    def hazard(self, times: ArrayLike) -> FloatArray:
        """Hazard rate ``pdf / sf``; ``inf`` where the sf underflows to 0."""
        t = as_float_array(times, "times")
        density = self.pdf(t)
        survival = self.sf(t)
        with np.errstate(divide="ignore", invalid="ignore"):
            rate = np.where(survival > 0.0, density / clip_positive(survival), np.inf)
        return np.where(density == 0.0, np.where(survival > 0.0, 0.0, rate), rate)

    def cumulative_hazard(self, times: ArrayLike) -> FloatArray:
        """Cumulative hazard ``-log(sf)``."""
        survival = self.sf(times)
        with np.errstate(divide="ignore"):
            return -np.log(clip_positive(survival))

    def quantile(self, probabilities: ArrayLike) -> FloatArray:
        """Inverse cdf via bisection (subclasses override with closed forms).

        Raises
        ------
        ValueError
            If any probability lies outside ``[0, 1)``.
        """
        probs = as_float_array(probabilities, "probabilities")
        if np.any((probs < 0.0) | (probs >= 1.0)):
            raise ValueError("probabilities must lie in [0, 1)")
        out = np.empty_like(probs)
        for index, p in enumerate(probs):
            out[index] = self._quantile_scalar(float(p))
        return out

    def _quantile_scalar(self, p: float) -> float:
        if p <= 0.0:
            return 0.0
        lo, hi = 0.0, 1.0
        # Expand hi until cdf(hi) exceeds p (or we hit an absurd bound).
        for _ in range(200):
            if float(self.cdf(np.array([hi]))[0]) >= p:
                break
            hi *= 2.0
        else:
            raise ValueError(f"quantile({p}) did not bracket within [0, {hi}]")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if float(self.cdf(np.array([mid]))[0]) < p:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-12 * max(hi, 1.0):
                break
        return 0.5 * (lo + hi)

    def median(self) -> float:
        """Distribution median."""
        return float(self.quantile(np.array([0.5]))[0])

    def mean(self) -> float:
        """Expected value; numeric integration of the sf by default.

        Uses the identity ``E[T] = ∫₀^∞ sf(t) dt`` for non-negative
        variables, integrated to the 1-1e-10 quantile.
        """
        from repro.utils.integrate import adaptive_quad

        upper = self._quantile_scalar(1.0 - 1e-10)
        return adaptive_quad(lambda t: float(self.sf(np.array([t]))[0]), 0.0, upper)

    def variance(self) -> float:
        """Variance; numeric by default via ``E[T²] − E[T]²``."""
        from repro.utils.integrate import adaptive_quad

        upper = self._quantile_scalar(1.0 - 1e-10)
        second_moment = adaptive_quad(
            lambda t: 2.0 * t * float(self.sf(np.array([t]))[0]), 0.0, upper
        )
        mu = self.mean()
        return max(second_moment - mu * mu, 0.0)

    def rvs(self, size: int, rng: np.random.Generator | None = None) -> FloatArray:
        """Draw *size* random variates by inverse-cdf sampling.

        Without an explicit *rng* the draws come from the library's
        seeded default generator (:data:`repro._rng.DEFAULT_SEED`), so
        repeated bare calls return identical variates — pass your own
        generator for independent streams.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        generator = resolve_rng(rng)
        uniforms = generator.random(size)
        return self.quantile(uniforms)

    # ------------------------------------------------------------------
    # Validation helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _require_positive(name: str, value: float) -> float:
        value = float(value)
        if not np.isfinite(value) or value <= 0.0:
            raise ParameterError(f"{name} must be a positive finite number, got {value}")
        return value

    @staticmethod
    def _require_finite(name: str, value: float) -> float:
        value = float(value)
        if not np.isfinite(value):
            raise ParameterError(f"{name} must be finite, got {value}")
        return value
