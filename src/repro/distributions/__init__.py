"""Lifetime distributions used as mixture-model components.

The paper's mixture resilience model (Eq. 7) composes two cumulative
distribution functions: one for degradation and one for recovery. The
evaluation uses the Exponential and Weibull distributions; this
subpackage also provides Gamma, Lognormal, Gompertz, and Log-logistic
distributions so that the mixture family can be extended beyond the
paper's four pairings.

Every distribution exposes the classical reliability quantities: pdf,
cdf, survival (reliability) function, hazard rate, cumulative hazard,
quantile function, moments, and random variate generation.
"""

from repro.distributions.base import LifetimeDistribution
from repro.distributions.exponential import Exponential
from repro.distributions.weibull import Weibull
from repro.distributions.gamma import Gamma
from repro.distributions.lognormal import Lognormal
from repro.distributions.gompertz import Gompertz
from repro.distributions.loglogistic import LogLogistic
from repro.distributions.from_hazard import HazardInducedDistribution
from repro.distributions.registry import (
    available_distributions,
    get_distribution_class,
    register_distribution,
)

__all__ = [
    "LifetimeDistribution",
    "Exponential",
    "Weibull",
    "Gamma",
    "Lognormal",
    "Gompertz",
    "LogLogistic",
    "HazardInducedDistribution",
    "available_distributions",
    "get_distribution_class",
    "register_distribution",
]
