"""Gompertz lifetime distribution (extension beyond the paper's pairings).

Classic aging model with exponentially increasing hazard
``h(t) = a·exp(b·t)``; useful for sharply accelerating degradation.
"""

from __future__ import annotations

import math
from typing import ClassVar

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.distributions.base import LifetimeDistribution
from repro.utils.numerics import as_float_array, safe_exp

__all__ = ["Gompertz"]


class Gompertz(LifetimeDistribution):
    """Gompertz distribution with baseline hazard ``a`` and aging rate ``b``.

    ``F(t) = 1 − exp(−(a/b)(e^{bt} − 1))``.
    """

    name: ClassVar[str] = "gompertz"
    param_names: ClassVar[tuple[str, ...]] = ("a", "b")
    param_lower_bounds: ClassVar[tuple[float, ...]] = (1e-8, 1e-8)
    param_upper_bounds: ClassVar[tuple[float, ...]] = (1e4, 1e4)

    def __init__(self, a: float, b: float) -> None:
        super().__init__()
        self.a = self._require_positive("a", a)
        self.b = self._require_positive("b", b)

    def _cumhaz(self, t: FloatArray) -> FloatArray:
        return (self.a / self.b) * np.expm1(self.b * np.maximum(t, 0.0))

    def pdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        tp = np.maximum(t, 0.0)
        density = self.a * safe_exp(self.b * tp) * safe_exp(-self._cumhaz(tp))
        return np.where(t < 0.0, 0.0, density)

    def cdf(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.where(t < 0.0, 0.0, -np.expm1(-self._cumhaz(t)))

    def hazard(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return np.where(t < 0.0, 0.0, self.a * safe_exp(self.b * np.maximum(t, 0.0)))

    def cumulative_hazard(self, times: ArrayLike) -> FloatArray:
        t = as_float_array(times, "times")
        return self._cumhaz(t)

    def quantile(self, probabilities: ArrayLike) -> FloatArray:
        probs = as_float_array(probabilities, "probabilities")
        if np.any((probs < 0.0) | (probs >= 1.0)):
            raise ValueError("probabilities must lie in [0, 1)")
        return np.log1p(-(self.b / self.a) * np.log1p(-probs)) / self.b

    def median(self) -> float:
        return math.log1p((self.b / self.a) * math.log(2.0)) / self.b
