"""Competing-risks (Hjorth) bathtub resilience model — Section II-A.2.

Performance over the disruption window is
``P(t) = α/(1 + β·t) + 2·γ·t`` (the scaled competing-risks hazard of
Eq. 4, continuity constant absorbed). Closed forms come from
:class:`~repro.hazards.hjorth.HjorthHazard`: the Eq. (5) recovery time
and the Eq. (6) area ``γt² + (α/β)ln(1 + βt)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.core.curve import ResilienceCurve
from repro.hazards.hjorth import HjorthHazard
from repro.models.base import ResilienceModel

__all__ = ["CompetingRisksResilienceModel"]


class CompetingRisksResilienceModel(ResilienceModel):
    """``P(t) = α/(1 + βt) + 2γt``.

    The hyperbolic term models deterioration (dominant early), the
    linear term recovery (dominant late). The family also expresses
    monotone and near-constant curves, the flexibility behind its
    stronger held-out PMSE in the paper's Table I.
    """

    name = "competing_risks"

    @property
    def param_names(self) -> tuple[str, ...]:
        return ("alpha", "beta", "gamma")

    @property
    def lower_bounds(self) -> tuple[float, ...]:
        return (1e-9, 1e-6, 0.0)

    @property
    def upper_bounds(self) -> tuple[float, ...]:
        return (10.0, 100.0, 1.0)

    def evaluate(self, times: ArrayLike, params: Sequence[float]) -> FloatArray:
        t = self._as_times(times)
        alpha, beta, gamma = params
        return alpha / (1.0 + beta * t) + 2.0 * gamma * t

    @property
    def has_analytic_jacobian(self) -> bool:
        return True

    def prediction_jacobian(
        self, times: ArrayLike, params: Sequence[float] | None = None
    ) -> FloatArray:
        """``∂P/∂(α, β, γ) = (1/(1+βt), −αt/(1+βt)², 2t)``."""
        t = self._as_times(times)
        alpha, beta, _ = self.params if params is None else tuple(params)
        denom = 1.0 + beta * t
        return np.stack(
            [1.0 / denom, -alpha * t / (denom * denom), 2.0 * t], axis=1
        )

    def evaluate_batch(self, times: FloatArray, params: FloatArray) -> FloatArray:
        """Vectorized over problems: one expression for the whole stack."""
        t = np.asarray(times, dtype=np.float64)
        p = np.asarray(params, dtype=np.float64)
        alpha = p[:, :1]
        beta = p[:, 1:2]
        gamma = p[:, 2:3]
        return alpha / (1.0 + beta * t) + 2.0 * gamma * t

    def prediction_jacobian_batch(
        self, times: FloatArray, params: FloatArray
    ) -> FloatArray:
        t = np.asarray(times, dtype=np.float64)
        p = np.asarray(params, dtype=np.float64)
        alpha = p[:, :1]
        beta = p[:, 1:2]
        denom = 1.0 + beta * t
        return np.stack(
            [1.0 / denom, -alpha * t / (denom * denom), 2.0 * t], axis=2
        )

    def initial_guesses(self, curve: ResilienceCurve) -> list[tuple[float, ...]]:
        """Seeds spanning slow and fast deterioration time-scales.

        α starts at the observed nominal level. β is seeded from the
        trough time (the hyperbola's decay has fallen substantially by
        ``t ≈ 2/β``), and γ from the late-window recovery slope.
        """
        t = curve.times
        p = curve.performance
        alpha0 = max(float(p[0]), 1e-6)
        trough_t = max(curve.trough_time - float(t[0]), 1.0)
        tail = max(len(curve) // 4, 2)
        late_slope = float(
            np.polyfit(t[-tail:], p[-tail:], 1)[0]
        )
        gamma0 = max(late_slope / 2.0, 1e-6)
        guesses: list[tuple[float, ...]] = []
        for beta_scale in (0.5, 2.0, 8.0):
            beta0 = beta_scale / trough_t
            beta0 = float(np.clip(beta0, self.lower_bounds[1], self.upper_bounds[1]))
            guesses.append(
                (
                    alpha0,
                    beta0,
                    float(np.clip(gamma0, self.lower_bounds[2], self.upper_bounds[2])),
                )
            )
        return guesses

    # ------------------------------------------------------------------
    # Closed forms via the underlying hazard function
    # ------------------------------------------------------------------
    def _hazard(self) -> HjorthHazard:
        alpha, beta, gamma = self.params
        return HjorthHazard(alpha, beta, gamma)

    def area_under_curve(self, lower: float, upper: float) -> float:
        """Eq. (6): ``γt² + (α/β)·ln(1 + βt)`` between the bounds."""
        hazard = self._hazard()
        lo, hi = hazard.cumulative(np.array([lower, upper]))
        return float(hi - lo)

    def minimum(self, horizon: float) -> tuple[float, float]:
        """Closed-form stationary point ``(√(αβ/2γ) − 1)/β``."""
        return self._hazard().minimum(horizon)

    def recovery_time(self, level: float, horizon: float = 1e4) -> float:
        """Eq. (5): later root of the level-crossing quadratic.

        Raises
        ------
        ValueError
            If the root lies beyond *horizon* (a near-zero γ pushes the
            closed-form root to astronomically late times, which
            callers should treat as "not recovering").
        """
        root = self._hazard().recovery_time(level)
        if root > horizon:
            raise ValueError(
                f"model {self.name!r} does not recover to {level} before "
                f"t={horizon} (closed-form root at t={root:.6g})"
            )
        return root

    def is_bathtub(self, horizon: float = 100.0) -> bool:
        """Interior-minimum condition ``αβ > 2γ`` on the bound fit."""
        return self._hazard().is_bathtub(horizon)
