"""Quadratic bathtub resilience model — Section II-A.1 of the paper.

Performance over the disruption window is ``P(t) = α + β·t + γ·t²``
(the scaled quadratic hazard of Eq. 1; the continuity constant *c*
is absorbed into the parameters). Closed forms are inherited from
:class:`~repro.hazards.quadratic.QuadraticHazard`: the recovery time of
Eq. (2) and the area under the curve of Eq. (3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.core.curve import ResilienceCurve
from repro.hazards.quadratic import QuadraticHazard
from repro.models.base import ResilienceModel

__all__ = ["QuadraticResilienceModel"]


class QuadraticResilienceModel(ResilienceModel):
    """``P(t) = α + βt + γt²`` with bathtub orientation enforced by bounds.

    Bounds keep ``α > 0`` (positive performance at the hazard onset),
    ``β ≤ 0`` (initial deterioration), and ``γ ≥ 0`` (eventual
    recovery), which is the orientation required for a bathtub shape.
    """

    name = "quadratic"

    @property
    def param_names(self) -> tuple[str, ...]:
        return ("alpha", "beta", "gamma")

    @property
    def lower_bounds(self) -> tuple[float, ...]:
        return (1e-9, -10.0, 0.0)

    @property
    def upper_bounds(self) -> tuple[float, ...]:
        return (10.0, 0.0, 10.0)

    def evaluate(self, times: ArrayLike, params: Sequence[float]) -> FloatArray:
        t = self._as_times(times)
        alpha, beta, gamma = params
        return alpha + beta * t + gamma * t * t

    @property
    def has_analytic_jacobian(self) -> bool:
        return True

    def prediction_jacobian(
        self, times: ArrayLike, params: Sequence[float] | None = None
    ) -> FloatArray:
        """``∂P/∂(α, β, γ) = (1, t, t²)`` — the model is linear in θ."""
        t = self._as_times(times)
        return np.stack([np.ones_like(t), t, t * t], axis=1)

    def evaluate_batch(self, times: FloatArray, params: FloatArray) -> FloatArray:
        """Vectorized over problems: one expression for the whole stack."""
        t = np.asarray(times, dtype=np.float64)
        p = np.asarray(params, dtype=np.float64)
        alpha = p[:, :1]
        beta = p[:, 1:2]
        gamma = p[:, 2:3]
        return alpha + beta * t + gamma * t * t

    def prediction_jacobian_batch(
        self, times: FloatArray, params: FloatArray
    ) -> FloatArray:
        t = np.asarray(times, dtype=np.float64)
        return np.stack([np.ones_like(t), t, t * t], axis=2)

    def initial_guesses(self, curve: ResilienceCurve) -> list[tuple[float, ...]]:
        """Two deterministic seeds: a clipped polynomial fit and a
        vertex-matching heuristic.

        The quadratic is linear in its parameters, so the unconstrained
        polyfit is the global optimum when it already satisfies the
        bathtub bounds; clipping only matters for curves (like the
        W-shaped 1980 recession) the family cannot represent.
        """
        t = curve.times
        p = curve.performance
        gamma_fit, beta_fit, alpha_fit = np.polyfit(t, p, 2)
        polyfit_guess = (
            float(np.clip(alpha_fit, self.lower_bounds[0], self.upper_bounds[0])),
            float(np.clip(beta_fit, self.lower_bounds[1], self.upper_bounds[1])),
            float(np.clip(gamma_fit, self.lower_bounds[2], self.upper_bounds[2])),
        )
        # Vertex-matching: place the parabola minimum at the observed trough.
        trough_t = max(curve.trough_time - float(t[0]), 1.0)
        depth = max(curve.nominal - curve.min_performance, 1e-6)
        gamma_vertex = depth / (trough_t * trough_t)
        vertex_guess = (
            max(curve.nominal, 1e-6),
            -2.0 * gamma_vertex * trough_t,
            gamma_vertex,
        )
        return [polyfit_guess, vertex_guess]

    # ------------------------------------------------------------------
    # Closed forms via the underlying hazard function
    # ------------------------------------------------------------------
    def _hazard(self) -> QuadraticHazard:
        alpha, beta, gamma = self.params
        return QuadraticHazard(alpha, beta, gamma)

    def area_under_curve(self, lower: float, upper: float) -> float:
        """Eq. (3): ``αt + βt²/2 + γt³/3`` evaluated between the bounds."""
        hazard = self._hazard()
        lo, hi = hazard.cumulative(np.array([lower, upper]))
        return float(hi - lo)

    def minimum(self, horizon: float) -> tuple[float, float]:
        """Parabola vertex, clipped to ``[0, horizon]``."""
        return self._hazard().minimum(horizon)

    def recovery_time(self, level: float, horizon: float = 1e4) -> float:
        """Eq. (2): later root of ``γt² + βt + (α − level) = 0``.

        Raises
        ------
        ValueError
            If the root lies beyond *horizon* (a near-flat recovery arm
            can push the closed-form root to astronomically late times,
            which callers should treat as "not recovering").
        """
        root = self._hazard().recovery_time(level)
        if root > horizon:
            raise ValueError(
                f"model {self.name!r} does not recover to {level} before "
                f"t={horizon} (closed-form root at t={root:.6g})"
            )
        return root

    def is_bathtub(self, horizon: float = 100.0) -> bool:
        """Paper's shape condition ``−2√(αγ) < β < 0`` on the bound fit."""
        return self._hazard().is_bathtub(horizon)
