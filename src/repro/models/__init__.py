"""Predictive resilience models — the paper's primary contribution.

Two model families are provided:

* **Bathtub-shaped hazard models** (Section II-A):
  :class:`QuadraticResilienceModel` (Eq. 1) and
  :class:`CompetingRisksResilienceModel` (Eq. 4), with closed-form
  recovery times (Eqs. 2, 5) and areas under the curve (Eqs. 3, 6).
* **Mixture-distribution models** (Section II-B, Eq. 7):
  :class:`MixtureResilienceModel` composing any two registered lifetime
  distributions with a recovery transition trend
  (:mod:`repro.models.trends`).

Models are *families* until bound to parameters: :meth:`bind` attaches
a parameter vector (usually produced by :mod:`repro.fitting`) and
enables :meth:`predict` and the derived quantities.
"""

from repro.models.base import ResilienceModel
from repro.models.quadratic import QuadraticResilienceModel
from repro.models.competing_risks import CompetingRisksResilienceModel
from repro.models.mixture import MixtureResilienceModel
from repro.models.partial import PartialDegradationMixtureModel
from repro.models.segmented import SegmentedBathtubModel
from repro.models.trends import (
    ConstantTrend,
    ExponentialTrend,
    LinearTrend,
    LogTrend,
    TransitionTrend,
    available_trends,
    get_trend_class,
)
from repro.models.registry import available_models, make_model

__all__ = [
    "ResilienceModel",
    "QuadraticResilienceModel",
    "CompetingRisksResilienceModel",
    "MixtureResilienceModel",
    "PartialDegradationMixtureModel",
    "SegmentedBathtubModel",
    "TransitionTrend",
    "ConstantTrend",
    "LinearTrend",
    "ExponentialTrend",
    "LogTrend",
    "available_trends",
    "get_trend_class",
    "available_models",
    "make_model",
]
