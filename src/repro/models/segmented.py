"""Segmented (two-episode) bathtub models — the paper's future work.

The paper's conclusion: W-shaped curves "deviate from the assumption of
a single decrease and subsequent increase [and] cannot be characterized
well by either class of model proposed, necessitating additional
modeling efforts that can capture these more general scenarios."

A W is two bathtub episodes in sequence. This model concatenates two
single-episode bathtub curves at a fitted changepoint ``c``::

    P(t) = λ₁(t)        for t < c
    P(t) = λ₂(t − c)    for t ≥ c

where each λᵢ is a quadratic (Eq. 1) or competing-risks (Eq. 4) rate
with its own parameters. Continuity at the changepoint is not imposed
as a hard constraint — the least-squares objective drives the two
branches together — which keeps the parameter space a simple box.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.core.curve import ResilienceCurve
from repro.exceptions import ParameterError
from repro.models.base import ResilienceModel
from repro.models.competing_risks import CompetingRisksResilienceModel
from repro.models.quadratic import QuadraticResilienceModel

__all__ = ["SegmentedBathtubModel"]

#: Episode families that can be concatenated.
_EPISODES = {
    "competing_risks": CompetingRisksResilienceModel,
    "quadratic": QuadraticResilienceModel,
}


class SegmentedBathtubModel(ResilienceModel):
    """Two bathtub episodes joined at a fitted changepoint.

    Parameters
    ----------
    episode:
        Family of each episode: ``"competing_risks"`` (default) or
        ``"quadratic"``.

    Notes
    -----
    The flat parameter vector is ``(first episode params, second
    episode params, changepoint)`` — 7 parameters for either episode
    family. With more than twice the parameters of a single-episode
    model, adjusted R² (Eq. 11) penalizes it accordingly; it should win
    only where the data genuinely contain two episodes.
    """

    def __init__(self, episode: str = "competing_risks") -> None:
        super().__init__()
        key = episode.strip().lower()
        if key not in _EPISODES:
            known = ", ".join(sorted(_EPISODES))
            raise ParameterError(f"unknown episode family {episode!r}; known: {known}")
        self._episode_family = _EPISODES[key]()
        self.name = "segmented" if key == "competing_risks" else f"segmented({key})"

    # ------------------------------------------------------------------
    # Family metadata
    # ------------------------------------------------------------------
    @property
    def episode_family(self) -> ResilienceModel:
        """The unbound single-episode family."""
        return self._episode_family

    @property
    def param_names(self) -> tuple[str, ...]:
        inner = self._episode_family.param_names
        return (
            tuple(f"e1_{n}" for n in inner)
            + tuple(f"e2_{n}" for n in inner)
            + ("changepoint",)
        )

    @property
    def lower_bounds(self) -> tuple[float, ...]:
        inner = self._episode_family.lower_bounds
        return inner + inner + (0.0,)

    @property
    def upper_bounds(self) -> tuple[float, ...]:
        inner = self._episode_family.upper_bounds
        return inner + inner + (1e4,)

    def _split(
        self, params: Sequence[float]
    ) -> tuple[tuple[float, ...], tuple[float, ...], float]:
        k = self._episode_family.n_params
        vector = tuple(float(v) for v in params)
        return vector[:k], vector[k : 2 * k], vector[2 * k]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, times: ArrayLike, params: Sequence[float]) -> FloatArray:
        t = self._as_times(times)
        p1, p2, changepoint = self._split(params)
        first = self._episode_family.evaluate(t, p1)
        second = self._episode_family.evaluate(np.maximum(t - changepoint, 0.0), p2)
        return np.where(t < changepoint, first, second)

    def episodes(self) -> tuple[ResilienceModel, ResilienceModel, float]:
        """The two bound episode models and the changepoint."""
        p1, p2, changepoint = self._split(self.params)
        return (
            self._episode_family.bind(p1),
            self._episode_family.bind(p2),
            changepoint,
        )

    # ------------------------------------------------------------------
    # Initial guesses
    # ------------------------------------------------------------------
    def initial_guesses(self, curve: ResilienceCurve) -> list[tuple[float, ...]]:
        """Candidate changepoints at the rebound between dips.

        For each candidate ``c`` (the interior local maximum of the
        smoothed curve, plus window fractions around the middle), the
        two sub-curves are given to the episode family's own heuristics.
        """
        times = curve.times
        window = curve.duration
        t0 = float(times[0])

        candidates = {t0 + f * window for f in (0.35, 0.5, 0.65)}
        rebound = self._interior_maximum(curve)
        if rebound is not None:
            candidates.add(rebound)

        guesses: list[tuple[float, ...]] = []
        for changepoint in sorted(candidates):
            mask = times < changepoint
            if int(mask.sum()) < 3 or int((~mask).sum()) < 3:
                continue
            first_curve = ResilienceCurve(
                times[mask], curve.performance[mask], nominal=curve.nominal
            )
            second_curve = ResilienceCurve(
                times[~mask] - changepoint,
                curve.performance[~mask],
                nominal=curve.nominal,
            )
            firsts = self._episode_family.initial_guesses(first_curve)
            seconds = self._episode_family.initial_guesses(second_curve)
            guess = firsts[0] + seconds[0] + (changepoint,)
            clipped = tuple(
                float(np.clip(v, lo, hi))
                for v, lo, hi in zip(guess, self.lower_bounds, self.upper_bounds)
            )
            if clipped not in guesses:
                guesses.append(clipped)
        if not guesses:
            # Degenerate curve: fall back to a midpoint split with the
            # episode family's guesses on the whole curve.
            base = self._episode_family.initial_guesses(curve)[0]
            guesses.append(base + base + (t0 + 0.5 * window,))
        return guesses

    @staticmethod
    def _interior_maximum(curve: ResilienceCurve) -> float | None:
        """Time of the highest smoothed point strictly between the two
        deepest *separate* dips, or ``None`` for a single-dip curve."""
        from scipy.signal import argrelmin

        perf = curve.performance
        if len(curve) < 7:
            return None
        kernel = np.ones(3) / 3.0
        smoothed = np.convolve(np.pad(perf, 1, mode="edge"), kernel, mode="valid")
        minima = argrelmin(smoothed, order=3)[0]
        if minima.size < 2:
            return None
        # Two deepest local minima, in time order.
        deepest = minima[np.argsort(smoothed[minima])[:2]]
        lo, hi = int(deepest.min()), int(deepest.max())
        if hi - lo < 3:
            return None
        rebound = lo + int(np.argmax(smoothed[lo : hi + 1]))
        return float(curve.times[rebound])
