"""Partial-degradation mixture — an L/K-shape extension of Eq. (7).

The paper's mixture holds the degradation transition at ``a₁(t) = 1``
"for simplicity", which forces the survival term to carry performance
all the way to zero as ``F₁ → 1``. Real L-shaped events (the 2020-21
recession, a partial outage) knock performance down by a *fraction* and
then plateau. Generalizing ``a₁`` to a partial-amplitude form gives

    P(t) = 1 − w·F₁(t) + a₂(t)·F₂(t)

where ``w ∈ (0, 1]`` is the fraction of nominal performance destroyed
by the disruption (``w = 1`` recovers the paper's model up to the
constant). A fast Weibull ``F₁`` makes the drop nearly instantaneous —
exactly the "sudden drop in performance" the paper identifies as
unfittable by its two families.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.core.curve import ResilienceCurve
from repro.models.base import ResilienceModel
from repro.models.mixture import MixtureResilienceModel

__all__ = ["PartialDegradationMixtureModel"]


class PartialDegradationMixtureModel(MixtureResilienceModel):
    """Mixture with a fitted degradation amplitude ``w``.

    Parameters are the same as :class:`MixtureResilienceModel` plus a
    trailing ``w`` (degradation amplitude).
    """

    def __init__(
        self,
        degradation: str = "weibull",
        recovery: str = "exponential",
        trend: str = "log",
    ) -> None:
        super().__init__(degradation, recovery, trend)
        self.name = f"partial-{self.name}"

    @property
    def param_names(self) -> tuple[str, ...]:
        return super().param_names + ("w",)

    @property
    def lower_bounds(self) -> tuple[float, ...]:
        return super().lower_bounds + (1e-3,)

    @property
    def upper_bounds(self) -> tuple[float, ...]:
        return super().upper_bounds + (1.0,)

    def _split_partial(
        self, params: Sequence[float]
    ) -> tuple[tuple[float, ...], float]:
        vector = tuple(float(v) for v in params)
        return vector[:-1], vector[-1]

    def evaluate(self, times: ArrayLike, params: Sequence[float]) -> FloatArray:
        t = self._as_times(times)
        mixture_params, w = self._split_partial(params)
        p1, p2, beta = self._split(mixture_params)
        f1 = self.degradation_class.from_vector(p1)
        f2 = self.recovery_class.from_vector(p2)
        degradation = 1.0 - w * f1.cdf(t)
        recovery = self.trend_class.value(t, beta) * f2.cdf(t)
        return degradation + recovery

    def prediction_jacobian(
        self, times: ArrayLike, params: Sequence[float] | None = None
    ) -> FloatArray:
        """The mixture's closed form with the ``F₁`` block scaled by
        ``w`` and a trailing ``∂P/∂w = −F₁(t)`` column."""
        if not self.has_analytic_jacobian:
            return ResilienceModel.prediction_jacobian(self, times, params)
        t = self._as_times(times)
        vector = self.params if params is None else tuple(float(v) for v in params)
        mixture_params, w = self._split_partial(vector)
        p1, p2, beta = self._split(mixture_params)
        f1 = self.degradation_class.from_vector(p1)
        f2 = self.recovery_class.from_vector(p2)
        trend = self.trend_class.value(t, beta)
        return np.concatenate(
            [
                -w * f1.cdf_gradient(t),
                trend[:, np.newaxis] * f2.cdf_gradient(t),
                (self.trend_class.beta_gradient(t, beta) * f2.cdf(t))[
                    :, np.newaxis
                ],
                -f1.cdf(t)[:, np.newaxis],
            ],
            axis=1,
        )

    def components(self, times: ArrayLike) -> tuple[FloatArray, FloatArray]:
        """Degradation (``1 − w·F₁``) and recovery (``a₂·F₂``) terms."""
        t = self._as_times(times)
        mixture_params, w = self._split_partial(self.params)
        p1, p2, beta = self._split(mixture_params)
        f1 = self.degradation_class.from_vector(p1)
        f2 = self.recovery_class.from_vector(p2)
        return 1.0 - w * f1.cdf(t), self.trend_class.value(t, beta) * f2.cdf(t)

    def initial_guesses(self, curve: ResilienceCurve) -> list[tuple[float, ...]]:
        """The mixture's seeds, extended with amplitude candidates.

        ``w`` is seeded at the observed degradation depth (the natural
        estimate for a plateauing L) and at 1.0 (the paper's original
        model as a fallback). The degradation scale is additionally
        seeded at the trough time so a sharp drop starts sharp.
        """
        depth = min(max(curve.degradation_depth / max(curve.nominal, 1e-12), 1e-3), 1.0)
        base = super().initial_guesses(curve)
        guesses: list[tuple[float, ...]] = []
        for mixture_guess in base:
            for w0 in (depth, 1.0):
                guess = mixture_guess + (w0,)
                if guess not in guesses:
                    guesses.append(guess)
        return guesses
