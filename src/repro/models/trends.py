"""Recovery transition trends ``a₂(t)`` for the mixture model.

Section V of the paper considers four increasing forms characteristic
of economic recovery::

    a₂(t) ∈ { β,  β·t,  e^{β·t},  β·ln t }

and reports results for ``β·ln t``, which "performed well for each data
set". Each trend contributes exactly one fitted parameter β, except
where noted.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Type

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.exceptions import ParameterError
from repro.utils.numerics import as_float_array, safe_exp

__all__ = [
    "TransitionTrend",
    "ConstantTrend",
    "LinearTrend",
    "ExponentialTrend",
    "LogTrend",
    "available_trends",
    "get_trend_class",
    "register_trend",
]

#: Floor applied to times inside ``ln t`` so t = 0 stays finite; the
#: product ``a₂(t)·F₂(t)`` still vanishes at t = 0 because F₂(0) = 0.
_LOG_TIME_FLOOR = 1e-9


class TransitionTrend(abc.ABC):
    """A one-parameter time trend scaling the recovery CDF in Eq. (7)."""

    #: Registry name, e.g. ``"log"``.
    name: ClassVar[str] = "abstract"

    #: Fitting bounds for β.
    beta_lower_bound: ClassVar[float] = -1e3
    beta_upper_bound: ClassVar[float] = 1e3

    @staticmethod
    @abc.abstractmethod
    def value(times: ArrayLike, beta: float) -> FloatArray:
        """Trend value ``a₂(t)`` at *times* for coefficient *beta*."""

    @staticmethod
    @abc.abstractmethod
    def beta_gradient(times: ArrayLike, beta: float) -> FloatArray:
        """Derivative ``∂a₂(t)/∂β`` at *times*.

        Every trend is smooth in β, so this feeds the analytic mixture
        Jacobian (``∂P/∂β = (∂a₂/∂β)·F₂``) used by the fit engine.
        """

    # ------------------------------------------------------------------
    # Batched evaluation — row ``b`` of *times*/*betas* is one problem.
    # The base implementations loop over rows so any registered trend
    # works with the batched fit engine; the four built-in trends
    # override with single vectorized expressions.
    # ------------------------------------------------------------------
    @classmethod
    def value_batch(cls, times: FloatArray, betas: FloatArray) -> FloatArray:
        """Stacked :meth:`value`: ``out[b] = value(times[b], betas[b])``.

        *times* has shape ``(B, n)``, *betas* shape ``(B,)``; the result
        is ``(B, n)``.
        """
        t = np.asarray(times, dtype=np.float64)
        b = np.asarray(betas, dtype=np.float64)
        out = np.empty(t.shape, dtype=np.float64)
        for row in range(t.shape[0]):
            out[row] = cls.value(t[row], float(b[row]))
        return out

    @classmethod
    def beta_gradient_batch(cls, times: FloatArray, betas: FloatArray) -> FloatArray:
        """Stacked :meth:`beta_gradient`, shapes as in :meth:`value_batch`."""
        t = np.asarray(times, dtype=np.float64)
        b = np.asarray(betas, dtype=np.float64)
        out = np.empty(t.shape, dtype=np.float64)
        for row in range(t.shape[0]):
            out[row] = cls.beta_gradient(t[row], float(b[row]))
        return out

    @classmethod
    def default_beta(cls, final_performance: float, final_time: float) -> float:
        """Heuristic β so the trend roughly matches the observed end level.

        Solves ``a₂(t_end) ≈ final_performance`` for β, used to seed the
        least-squares fit.
        """
        t_end = max(final_time, 1.0)
        target = final_performance
        return cls._solve_beta(target, t_end)

    @classmethod
    @abc.abstractmethod
    def _solve_beta(cls, target: float, t_end: float) -> float:
        """Invert ``a₂(t_end; β) = target`` for β."""


class ConstantTrend(TransitionTrend):
    """``a₂(t) = β`` — recovery plateaus at a fixed level."""

    name: ClassVar[str] = "constant"

    @staticmethod
    def value(times: ArrayLike, beta: float) -> FloatArray:
        t = as_float_array(times, "times")
        return np.full_like(t, beta)

    @staticmethod
    def beta_gradient(times: ArrayLike, beta: float) -> FloatArray:
        t = as_float_array(times, "times")
        return np.ones_like(t)

    @classmethod
    def value_batch(cls, times: FloatArray, betas: FloatArray) -> FloatArray:
        t = np.asarray(times, dtype=np.float64)
        b = np.asarray(betas, dtype=np.float64)
        return np.broadcast_to(b[:, np.newaxis], t.shape).copy()

    @classmethod
    def beta_gradient_batch(cls, times: FloatArray, betas: FloatArray) -> FloatArray:
        t = np.asarray(times, dtype=np.float64)
        return np.ones_like(t)

    @classmethod
    def _solve_beta(cls, target: float, t_end: float) -> float:
        return target


class LinearTrend(TransitionTrend):
    """``a₂(t) = β·t`` — recovery grows linearly."""

    name: ClassVar[str] = "linear"

    @staticmethod
    def value(times: ArrayLike, beta: float) -> FloatArray:
        t = as_float_array(times, "times")
        return beta * t

    @staticmethod
    def beta_gradient(times: ArrayLike, beta: float) -> FloatArray:
        return as_float_array(times, "times").copy()

    @classmethod
    def value_batch(cls, times: FloatArray, betas: FloatArray) -> FloatArray:
        t = np.asarray(times, dtype=np.float64)
        b = np.asarray(betas, dtype=np.float64)
        return b[:, np.newaxis] * t

    @classmethod
    def beta_gradient_batch(cls, times: FloatArray, betas: FloatArray) -> FloatArray:
        return np.asarray(times, dtype=np.float64).copy()

    @classmethod
    def _solve_beta(cls, target: float, t_end: float) -> float:
        # default_beta already floors t_end at 1.0; the max keeps the
        # inversion total for direct callers too.
        return target / max(t_end, 1.0)


class ExponentialTrend(TransitionTrend):
    """``a₂(t) = e^{β·t}`` — recovery grows exponentially."""

    name: ClassVar[str] = "exponential"
    # Tight bounds: e^{βt} explodes quickly over 48-month windows.
    beta_lower_bound: ClassVar[float] = -1.0
    beta_upper_bound: ClassVar[float] = 1.0

    @staticmethod
    def value(times: ArrayLike, beta: float) -> FloatArray:
        t = as_float_array(times, "times")
        return safe_exp(beta * t)

    @staticmethod
    def beta_gradient(times: ArrayLike, beta: float) -> FloatArray:
        t = as_float_array(times, "times")
        return t * safe_exp(beta * t)

    @classmethod
    def value_batch(cls, times: FloatArray, betas: FloatArray) -> FloatArray:
        t = np.asarray(times, dtype=np.float64)
        b = np.asarray(betas, dtype=np.float64)
        return safe_exp(b[:, np.newaxis] * t)

    @classmethod
    def beta_gradient_batch(cls, times: FloatArray, betas: FloatArray) -> FloatArray:
        t = np.asarray(times, dtype=np.float64)
        b = np.asarray(betas, dtype=np.float64)
        return t * safe_exp(b[:, np.newaxis] * t)

    @classmethod
    def _solve_beta(cls, target: float, t_end: float) -> float:
        if target <= 0.0:
            return 0.0
        return float(np.log(target) / max(t_end, 1.0))


class LogTrend(TransitionTrend):
    """``a₂(t) = β·ln t`` — the paper's best-performing trend.

    Times are floored at a tiny positive value so t = 0 evaluates
    finitely; the mixture product still vanishes there since
    ``F₂(0) = 0``.
    """

    name: ClassVar[str] = "log"

    @staticmethod
    def value(times: ArrayLike, beta: float) -> FloatArray:
        t = as_float_array(times, "times")
        return beta * np.log(np.maximum(t, _LOG_TIME_FLOOR))

    @staticmethod
    def beta_gradient(times: ArrayLike, beta: float) -> FloatArray:
        t = as_float_array(times, "times")
        return np.log(np.maximum(t, _LOG_TIME_FLOOR))

    @classmethod
    def value_batch(cls, times: FloatArray, betas: FloatArray) -> FloatArray:
        t = np.asarray(times, dtype=np.float64)
        b = np.asarray(betas, dtype=np.float64)
        return b[:, np.newaxis] * np.log(np.maximum(t, _LOG_TIME_FLOOR))

    @classmethod
    def beta_gradient_batch(cls, times: FloatArray, betas: FloatArray) -> FloatArray:
        t = np.asarray(times, dtype=np.float64)
        return np.log(np.maximum(t, _LOG_TIME_FLOOR))

    @classmethod
    def _solve_beta(cls, target: float, t_end: float) -> float:
        # log(max(t_end, 2)) >= ln 2 ~ 0.69, so the floor below never
        # binds; it just makes the denominator's positivity explicit.
        log_end = float(np.log(max(t_end, 2.0)))
        return target / max(log_end, 0.5)


_REGISTRY: dict[str, Type[TransitionTrend]] = {}


def register_trend(cls: Type[TransitionTrend]) -> Type[TransitionTrend]:
    """Register a trend class under its :attr:`name`."""
    if not cls.name or cls.name == "abstract":
        raise ParameterError(f"{cls.__name__} has no registry name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ParameterError(f"trend name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_trend_class(name: str) -> Type[TransitionTrend]:
    """Look up a trend class by name (``"ln"``/``"logarithmic"`` map to
    ``"log"``, ``"exp"`` to ``"exponential"``)."""
    aliases = {"ln": "log", "logarithmic": "log", "exp": "exponential"}
    key = aliases.get(name.lower(), name.lower())
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ParameterError(f"unknown trend {name!r}; known: {known}") from None


def available_trends() -> tuple[str, ...]:
    """Sorted names of all registered trends."""
    return tuple(sorted(_REGISTRY))


for _cls in (ConstantTrend, LinearTrend, ExponentialTrend, LogTrend):
    register_trend(_cls)
