"""Factory for resilience-model families by name.

Names accepted:

* ``"quadratic"`` — the Eq. (1) bathtub model.
* ``"competing_risks"`` (alias ``"hjorth"``) — the Eq. (4) model.
* ``"<f1>-<f2>"`` mixtures such as ``"exp-wei"`` or
  ``"weibull-exponential"``, optionally with a trend suffix in
  parentheses: ``"wei-exp(linear)"``. Default trend is ``"log"``.
* ``"segmented"`` / ``"segmented(quadratic)"`` — two-episode bathtub
  for W-shaped curves (extension; DESIGN.md §5).
* ``"partial-<f1>-<f2>[(trend)]"`` — partial-degradation mixture for
  L/K-shaped curves (extension).
"""

from __future__ import annotations

import re

from repro.exceptions import ParameterError
from repro.models.base import ResilienceModel
from repro.models.competing_risks import CompetingRisksResilienceModel
from repro.models.mixture import MixtureResilienceModel
from repro.models.partial import PartialDegradationMixtureModel
from repro.models.quadratic import QuadraticResilienceModel
from repro.models.segmented import SegmentedBathtubModel

__all__ = ["make_model", "available_models"]

_MIXTURE_PATTERN = re.compile(
    r"^(?P<partial>partial-)?(?P<f1>[a-z_]+)-(?P<f2>[a-z_]+)(?:\((?P<trend>[a-z_]+)\))?$"
)

_SEGMENTED_PATTERN = re.compile(r"^segmented(?:\((?P<episode>[a-z_]+)\))?$")


def make_model(name: str) -> ResilienceModel:
    """Construct an unbound model family from its name.

    Raises
    ------
    ParameterError
        If the name matches no known family.
    """
    key = name.strip().lower()
    if key == "quadratic":
        return QuadraticResilienceModel()
    if key in ("competing_risks", "competing-risks", "hjorth"):
        return CompetingRisksResilienceModel()
    segmented = _SEGMENTED_PATTERN.match(key)
    if segmented:
        return SegmentedBathtubModel(segmented.group("episode") or "competing_risks")
    match = _MIXTURE_PATTERN.match(key)
    if match:
        trend = match.group("trend") or "log"
        if match.group("partial"):
            return PartialDegradationMixtureModel(
                match.group("f1"), match.group("f2"), trend
            )
        return MixtureResilienceModel(match.group("f1"), match.group("f2"), trend)
    raise ParameterError(
        f"unknown model {name!r}; expected 'quadratic', 'competing_risks', "
        f"'segmented[(episode)]', a '<f1>-<f2>[(trend)]' mixture such as "
        f"'wei-exp' or 'exp-wei(linear)', or a 'partial-<f1>-<f2>' variant"
    )


def available_models() -> tuple[str, ...]:
    """Representative list of constructible model names.

    Mixture names are open-ended (any registered distribution pair);
    this returns the paper's families plus the two bathtub models.
    """
    return (
        "quadratic",
        "competing_risks",
        "exp-exp",
        "wei-exp",
        "exp-wei",
        "wei-wei",
        "segmented",
        "partial-wei-exp",
    )
