"""Abstract base class for predictive resilience models.

A model object is a *family* (a parametric form plus metadata) that
becomes a concrete predictor once bound to a parameter vector via
:meth:`ResilienceModel.bind`. Fitting code treats families uniformly:
it asks for bounds and initial guesses, minimizes Eq. (8), and binds
the optimum.
"""

from __future__ import annotations

import abc
import copy
from typing import Callable, Sequence

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.core.curve import ResilienceCurve
from repro.exceptions import ParameterError
from repro.utils.integrate import gauss_legendre_quad
from repro.utils.numerics import as_float_array

try:  # SciPy keeps this helper private but stable; degrade if it moves.
    from scipy.optimize._numdiff import approx_derivative as _approx_derivative
except ImportError:  # pragma: no cover - exercised only on exotic scipy builds
    _approx_derivative = None

__all__ = ["ResilienceModel"]


def _refine_minimum(
    func: Callable[[FloatArray], FloatArray],
    lo: float,
    hi: float,
    *,
    n_points: int = 257,
    rel_tol: float = 1e-9,
    max_rounds: int = 60,
) -> tuple[float, float]:
    """Vectorized bracket-shrinking minimization.

    Each round evaluates *func* once on an ``n_points`` grid over the
    bracket and keeps the two cells around the argmin, shrinking the
    bracket by ``(n_points − 1) / 2`` per batched call — the vectorized
    replacement for scalar ``minimize_scalar`` on a model ``predict``.

    The grid is deliberately wide (257 points) so the refinement batches
    several rounds' worth of shrinkage into each vectorized call: per
    round the bracket shrinks 128×, reaching ``rel_tol`` in ~4 calls
    where a 65-point grid needed ~8. On vectorized ``predict`` kernels
    the per-call dispatch overhead dominates the extra grid points.
    """
    best_t = best_v = float("nan")
    for _ in range(max_rounds):
        grid = np.linspace(lo, hi, n_points)
        values = func(grid)
        arg = int(np.argmin(values))
        best_t, best_v = float(grid[arg]), float(values[arg])
        if (hi - lo) <= rel_tol * max(1.0, abs(lo) + abs(hi)):
            break
        lo = float(grid[max(arg - 1, 0)])
        hi = float(grid[min(arg + 1, n_points - 1)])
    return best_t, best_v


def _refine_crossing(
    func: Callable[[FloatArray], FloatArray],
    lo: float,
    hi: float,
    *,
    n_points: int = 513,
    xtol: float = 1e-12,
    max_rounds: int = 60,
) -> float:
    """Vectorized root bracketing for an upward crossing of zero.

    Assumes ``func(lo) < 0 <= func(hi)`` and narrows the bracket to the
    first sign change on an ``n_points`` grid per round — one batched
    call shrinks the bracket ``(n_points − 1)``-fold, the vectorized
    replacement for scalar Brent refinement on a model ``predict``.

    As with :func:`_refine_minimum`, the 513-point grid batches what a
    65-point grid spread over ~8 sequential rounds into ~4 calls
    (512× shrinkage per round), trading cheap extra grid points for
    fewer Python→``predict`` dispatches.
    """
    for _ in range(max_rounds):
        if (hi - lo) <= max(xtol, abs(hi) * 4.0 * np.finfo(np.float64).eps):
            break
        grid = np.linspace(lo, hi, n_points)
        values = func(grid)
        above = np.nonzero(values >= 0.0)[0]
        if not above.size:  # numeric noise at the endpoint: keep bisecting
            lo = float(grid[-2])
            continue
        hit = int(above[0])
        if hit == 0:
            return float(grid[0])
        lo = float(grid[hit - 1])
        hi = float(grid[hit])
    return 0.5 * (lo + hi)


class ResilienceModel(abc.ABC):
    """A parametric resilience-curve family ``P(t; θ)``.

    Subclasses define the parameter metadata (:attr:`param_names` and
    bounds) and implement :meth:`evaluate` — a pure function of times
    and a raw parameter vector — plus :meth:`initial_guesses`.
    """

    #: Display/registry name, e.g. ``"quadratic"`` or ``"wei-exp"``.
    name: str = "abstract"

    def __init__(self) -> None:
        self._params: tuple[float, ...] | None = None

    # ------------------------------------------------------------------
    # Family metadata (subclass responsibility)
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def param_names(self) -> tuple[str, ...]:
        """Canonical parameter order of the family."""

    @property
    @abc.abstractmethod
    def lower_bounds(self) -> tuple[float, ...]:
        """Per-parameter lower fitting bounds."""

    @property
    @abc.abstractmethod
    def upper_bounds(self) -> tuple[float, ...]:
        """Per-parameter upper fitting bounds."""

    @property
    def n_params(self) -> int:
        """Number of free parameters."""
        return len(self.param_names)

    @abc.abstractmethod
    def evaluate(self, times: ArrayLike, params: Sequence[float]) -> FloatArray:
        """Model performance at *times* for raw parameter vector *params*.

        Must be safe to call anywhere inside the fitting bounds: return
        finite values rather than raising, so optimizers can traverse
        the space.
        """

    @abc.abstractmethod
    def initial_guesses(self, curve: ResilienceCurve) -> list[tuple[float, ...]]:
        """Deterministic starting vectors for fitting on *curve*.

        Order matters: the first guess should be the best heuristic;
        multi-start fitting tries them all.
        """

    # ------------------------------------------------------------------
    # Binding parameters
    # ------------------------------------------------------------------
    @property
    def is_bound(self) -> bool:
        """Whether a parameter vector has been attached."""
        return self._params is not None

    @property
    def params(self) -> tuple[float, ...]:
        """The bound parameter vector.

        Raises
        ------
        ParameterError
            If the model family has not been bound yet.
        """
        if self._params is None:
            raise ParameterError(
                f"model {self.name!r} is unbound; call bind() or fit it first"
            )
        return self._params

    @property
    def param_dict(self) -> dict[str, float]:
        """Bound parameters keyed by name."""
        return dict(zip(self.param_names, self.params))

    def bind(self, params: Sequence[float]) -> "ResilienceModel":
        """Return a copy of this family bound to *params*.

        Raises
        ------
        ParameterError
            If the vector length is wrong or contains non-finite values.
        """
        vector = tuple(float(v) for v in params)
        if len(vector) != self.n_params:
            raise ParameterError(
                f"model {self.name!r} expects {self.n_params} parameters, "
                f"got {len(vector)}"
            )
        if not all(np.isfinite(v) for v in vector):
            raise ParameterError(f"model {self.name!r}: parameters must be finite")
        bound = copy.copy(self)
        bound._params = vector
        return bound

    def predict(self, times: ArrayLike) -> FloatArray:
        """Performance predicted at *times* with the bound parameters."""
        return self.evaluate(times, self.params)

    def __repr__(self) -> str:
        if self.is_bound:
            args = ", ".join(f"{k}={v:.6g}" for k, v in self.param_dict.items())
            return f"{type(self).__name__}[{self.name}]({args})"
        return f"{type(self).__name__}[{self.name}](unbound)"

    # ------------------------------------------------------------------
    # Derived quantities — numeric fallbacks; subclasses override with
    # the paper's closed forms where those exist. All three fallbacks
    # evaluate ``predict`` in batches (fixed-order quadrature panels,
    # bracket-shrinking grids) so a derived quantity costs a handful of
    # vectorized calls instead of hundreds of scalar ones.
    # ------------------------------------------------------------------
    def area_under_curve(self, lower: float, upper: float) -> float:
        """``∫ P(t) dt`` over ``[lower, upper]`` (numeric by default:
        composite Gauss–Legendre panels on one batched ``predict``)."""
        return gauss_legendre_quad(self.predict, lower, upper)

    def minimum(self, horizon: float) -> tuple[float, float]:
        """Time and value of the predicted performance minimum on
        ``[0, horizon]`` (coarse grid + vectorized bracket refinement
        by default)."""
        grid = np.linspace(0.0, horizon, 2001)
        values = self.predict(grid)
        arg = int(np.argmin(values))
        lo = float(grid[max(arg - 1, 0)])
        hi = float(grid[min(arg + 1, grid.size - 1)])
        if lo == hi:
            return float(grid[arg]), float(values[arg])
        return _refine_minimum(self.predict, lo, hi)

    def recovery_time(self, level: float, horizon: float = 1e4) -> float:
        """First time after the trough at which ``P(t) = level``.

        Numeric default: bracket on a grid beyond the trough and narrow
        the bracket with vectorized grid refinement. Subclasses with
        closed forms (Eqs. 2, 5) override.

        Raises
        ------
        ValueError
            If performance never recovers to *level* before *horizon*.
        """
        trough_time, trough_value = self.minimum(horizon)
        if trough_value >= level:
            return trough_time
        grid = np.linspace(trough_time, horizon, 4001)
        values = self.predict(grid) - level
        above = np.nonzero(values >= 0.0)[0]
        if not above.size:
            raise ValueError(
                f"model {self.name!r} never recovers to level {level} "
                f"before t={horizon}"
            )
        hit = int(above[0])
        if hit == 0:
            return float(grid[0])
        return _refine_crossing(
            lambda t: self.predict(t) - level,
            float(grid[hit - 1]),
            float(grid[hit]),
        )

    def predict_clamped(
        self, times: ArrayLike, recovery_level: float, horizon: float = 1e4
    ) -> FloatArray:
        """Prediction following the paper's piecewise definition: the
        model curve up to the recovery time ``t_r`` at
        ``P(t_r) = recovery_level``, then held constant at that level
        (Section II-A's ``P(t) = P(t_r)`` for ``t > t_r``).

        If the model never reaches *recovery_level* before *horizon*
        the raw prediction is returned unclamped.
        """
        t = self._as_times(times)
        values = self.predict(t)
        try:
            t_r = self.recovery_time(recovery_level, horizon)
        except ValueError:
            return values
        return np.where(t > t_r, recovery_level, values)

    # ------------------------------------------------------------------
    # Derivatives — analytic where the family overrides, validated
    # finite-difference fallback otherwise. These feed the fit engine
    # (``jac=`` in scipy's trust-region least squares) and the
    # uncertainty machinery (Gauss–Newton covariance, delta method).
    # ------------------------------------------------------------------
    @property
    def has_analytic_jacobian(self) -> bool:
        """Whether :meth:`prediction_jacobian` is a closed form.

        Families with elementary parameter derivatives (quadratic,
        competing-risks, the Exp/Wei mixtures) override this to True;
        the base class answers False and differentiates numerically.
        """
        return False

    def prediction_jacobian(
        self, times: ArrayLike, params: Sequence[float] | None = None
    ) -> FloatArray:
        """Matrix ``J[i, j] = ∂P(tᵢ; θ)/∂θⱼ`` of shape ``(n, n_params)``.

        The base implementation is a bounds-aware 2-point finite
        difference (scipy's ``approx_derivative`` when available); it is
        correct for every family but costs one model evaluation per
        parameter. Subclasses with closed forms override it and set
        :attr:`has_analytic_jacobian`.
        """
        vector = self.params if params is None else tuple(float(v) for v in params)
        return self._numeric_prediction_jacobian(times, vector)

    def jacobian(
        self, curve: ResilienceCurve, params: Sequence[float] | None = None
    ) -> FloatArray:
        """Jacobian ``∂residual/∂θ`` of the Eq. (8) objective.

        Residuals are ``R(tᵢ) − P(tᵢ)``, so this is simply the negated
        :meth:`prediction_jacobian` on the curve's sample times — the
        matrix handed to ``scipy.optimize.least_squares`` via ``jac=``.
        """
        return -self.prediction_jacobian(curve.times, params)

    def _numeric_prediction_jacobian(
        self, times: ArrayLike, vector: Sequence[float]
    ) -> FloatArray:
        t = self._as_times(times)
        x = np.asarray(vector, dtype=np.float64)
        lower = np.minimum(np.asarray(self.lower_bounds, dtype=np.float64), x)
        upper = np.maximum(np.asarray(self.upper_bounds, dtype=np.float64), x)

        def func(v: np.ndarray) -> FloatArray:
            return np.asarray(self.evaluate(t, v), dtype=np.float64)

        if _approx_derivative is not None:
            jac = _approx_derivative(func, x, method="2-point", bounds=(lower, upper))
            return np.asarray(jac, dtype=np.float64).reshape(t.size, x.size)
        # Minimal fallback: forward differences, stepping backward at
        # the upper bound so the probe stays inside the box.
        base = func(x)
        jac = np.empty((t.size, x.size), dtype=np.float64)
        root_eps = float(np.sqrt(np.finfo(np.float64).eps))
        for j in range(x.size):
            step = root_eps * max(abs(x[j]), 1.0)
            if x[j] + step > upper[j]:
                step = -step
            bumped = x.copy()
            bumped[j] += step
            jac[:, j] = (func(bumped) - base) / step
        return jac

    # ------------------------------------------------------------------
    # Batched evaluation — the contract behind the batched LM engine.
    # Both methods accept a *stack* of independent problems: row ``b``
    # of *times* and *params* describes one problem, and row ``b`` of
    # the result is exactly what the scalar method returns for it. The
    # base implementations loop, so every family supports the protocol;
    # families on the fitting hot path override with one vectorized
    # numpy expression per batch (see quadratic/competing-risks/mixture).
    # ------------------------------------------------------------------
    def evaluate_batch(self, times: FloatArray, params: FloatArray) -> FloatArray:
        """Performance for a stack of problems: ``out[b] =
        evaluate(times[b], params[b])``.

        Parameters
        ----------
        times:
            Array of shape ``(B, n)`` — one time grid per problem.
        params:
            Array of shape ``(B, n_params)`` — one raw vector per
            problem.

        Returns
        -------
        FloatArray
            Shape ``(B, n)``.
        """
        t = np.asarray(times, dtype=np.float64)
        x = np.asarray(params, dtype=np.float64)
        out = np.empty(t.shape, dtype=np.float64)
        for row in range(x.shape[0]):
            out[row] = np.asarray(self.evaluate(t[row], x[row]), dtype=np.float64)
        return out

    def prediction_jacobian_batch(
        self, times: FloatArray, params: FloatArray
    ) -> FloatArray:
        """Stacked :meth:`prediction_jacobian`: ``out[b] =
        prediction_jacobian(times[b], params[b])``.

        Parameters
        ----------
        times:
            Array of shape ``(B, n)``.
        params:
            Array of shape ``(B, n_params)``.

        Returns
        -------
        FloatArray
            Shape ``(B, n, n_params)``.
        """
        t = np.asarray(times, dtype=np.float64)
        x = np.asarray(params, dtype=np.float64)
        out = np.empty((t.shape[0], t.shape[1], x.shape[1]), dtype=np.float64)
        for row in range(x.shape[0]):
            out[row] = np.asarray(
                self.prediction_jacobian(t[row], x[row]), dtype=np.float64
            )
        return out

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content-address of the family *configuration*.

        Captures everything that determines what a fit of this family
        means — concrete class, registry name (which encodes component
        distributions and trends for composite families), parameter
        names, and fitting bounds — without any bound parameter state.
        Used by the fit cache to key results.
        """
        return "|".join(
            (
                type(self).__name__,
                self.name,
                ",".join(self.param_names),
                ",".join(repr(float(v)) for v in self.lower_bounds),
                ",".join(repr(float(v)) for v in self.upper_bounds),
            )
        )

    # ------------------------------------------------------------------
    # Fit-objective helpers
    # ------------------------------------------------------------------
    def residuals(
        self, curve: ResilienceCurve, params: Sequence[float] | None = None
    ) -> FloatArray:
        """Residual vector ``R(t_i) − P(t_i)`` of Eq. (8)."""
        vector = self.params if params is None else tuple(params)
        predictions = self.evaluate(curve.times, vector)
        return curve.performance - predictions

    def sse(self, curve: ResilienceCurve, params: Sequence[float] | None = None) -> float:
        """Sum of squared residuals on *curve* (Eq. 9)."""
        res = self.residuals(curve, params)
        return float(np.dot(res, res))

    @staticmethod
    def _as_times(times: ArrayLike) -> FloatArray:
        return as_float_array(times, "times")
