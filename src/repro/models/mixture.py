"""Mixture-distribution resilience model — Section II-B, Eq. (7).

``P(t) = a₁(t)·(1 − F₁(t)) + a₂(t)·F₂(t)``

``F₁`` is the degradation CDF (its survival function carries the
initial performance down), ``F₂`` the recovery CDF, and ``a₂(t)`` a
one-parameter transition trend (:mod:`repro.models.trends`). Following
the paper's experiments, ``a₁(t) = 1`` is held constant.

The family is configured by distribution names, so the paper's four
pairings are::

    MixtureResilienceModel("exp", "exp")   # Exp-Exp
    MixtureResilienceModel("wei", "exp")   # Wei-Exp
    MixtureResilienceModel("exp", "wei")   # Exp-Wei
    MixtureResilienceModel("wei", "wei")   # Wei-Wei

with the default ``trend="log"`` (the β·ln t form used for Table III).
Any registered lifetime distribution may be substituted.
"""

from __future__ import annotations

from typing import Sequence, Type

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.core.curve import ResilienceCurve
from repro.distributions.base import LifetimeDistribution
from repro.distributions.exponential import Exponential
from repro.distributions.registry import get_distribution_class
from repro.distributions.weibull import Weibull
from repro.models.base import ResilienceModel
from repro.models.trends import TransitionTrend, get_trend_class

__all__ = ["MixtureResilienceModel"]

#: Abbreviations used in the paper's model labels.
_ABBREVIATIONS = {"exponential": "exp", "weibull": "wei"}


def _abbreviate(name: str) -> str:
    return _ABBREVIATIONS.get(name, name)


class MixtureResilienceModel(ResilienceModel):
    """Mixture of a degradation and a recovery distribution.

    Parameters
    ----------
    degradation:
        Registry name of ``F₁`` (e.g. ``"weibull"`` or its alias
        ``"wei"``).
    recovery:
        Registry name of ``F₂``.
    trend:
        Registry name of the recovery trend ``a₂``; default ``"log"``
        (``β·ln t``) as in the paper's Table III.

    Notes
    -----
    The flat parameter vector is the concatenation of the degradation
    distribution's parameters (prefixed ``d_``), the recovery
    distribution's (prefixed ``r_``), and the trend coefficient
    ``beta``.
    """

    def __init__(
        self,
        degradation: str = "weibull",
        recovery: str = "exponential",
        trend: str = "log",
    ) -> None:
        super().__init__()
        self._f1_class: Type[LifetimeDistribution] = get_distribution_class(degradation)
        self._f2_class: Type[LifetimeDistribution] = get_distribution_class(recovery)
        self._trend_class: Type[TransitionTrend] = get_trend_class(trend)
        self.name = (
            f"{_abbreviate(self._f1_class.name)}-{_abbreviate(self._f2_class.name)}"
        )
        if self._trend_class.name != "log":
            self.name += f"({self._trend_class.name})"

    # ------------------------------------------------------------------
    # Family metadata
    # ------------------------------------------------------------------
    @property
    def degradation_class(self) -> Type[LifetimeDistribution]:
        """The degradation CDF family ``F₁``."""
        return self._f1_class

    @property
    def recovery_class(self) -> Type[LifetimeDistribution]:
        """The recovery CDF family ``F₂``."""
        return self._f2_class

    @property
    def trend_class(self) -> Type[TransitionTrend]:
        """The recovery transition trend family ``a₂``."""
        return self._trend_class

    @property
    def param_names(self) -> tuple[str, ...]:
        return (
            tuple(f"d_{n}" for n in self._f1_class.param_names)
            + tuple(f"r_{n}" for n in self._f2_class.param_names)
            + ("beta",)
        )

    @property
    def lower_bounds(self) -> tuple[float, ...]:
        return (
            self._f1_class.param_lower_bounds
            + self._f2_class.param_lower_bounds
            + (self._trend_class.beta_lower_bound,)
        )

    @property
    def upper_bounds(self) -> tuple[float, ...]:
        return (
            self._f1_class.param_upper_bounds
            + self._f2_class.param_upper_bounds
            + (self._trend_class.beta_upper_bound,)
        )

    def _split(
        self, params: Sequence[float]
    ) -> tuple[tuple[float, ...], tuple[float, ...], float]:
        n1 = self._f1_class.n_params()
        n2 = self._f2_class.n_params()
        vector = tuple(float(v) for v in params)
        return vector[:n1], vector[n1 : n1 + n2], vector[n1 + n2]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, times: ArrayLike, params: Sequence[float]) -> FloatArray:
        t = self._as_times(times)
        p1, p2, beta = self._split(params)
        f1 = self._f1_class.from_vector(p1)
        f2 = self._f2_class.from_vector(p2)
        survival = 1.0 - f1.cdf(t)
        recovery = self._trend_class.value(t, beta) * f2.cdf(t)
        return survival + recovery

    @property
    def has_analytic_jacobian(self) -> bool:
        """Closed form whenever both component CDFs expose analytic
        parameter gradients (Exp and Weibull do — the paper's four
        pairings all qualify, under every trend)."""
        return (
            self._f1_class.has_cdf_gradient() and self._f2_class.has_cdf_gradient()
        )

    def prediction_jacobian(
        self, times: ArrayLike, params: Sequence[float] | None = None
    ) -> FloatArray:
        """Eq. (7) parameter derivatives, column-blocked by component:

        ``∂P/∂p₁ = −∂F₁/∂p₁``, ``∂P/∂p₂ = a₂(t)·∂F₂/∂p₂``, and
        ``∂P/∂β = (∂a₂/∂β)·F₂(t)``.
        """
        if not self.has_analytic_jacobian:
            return super().prediction_jacobian(times, params)
        t = self._as_times(times)
        vector = self.params if params is None else params
        p1, p2, beta = self._split(vector)
        f1 = self._f1_class.from_vector(p1)
        f2 = self._f2_class.from_vector(p2)
        trend = self._trend_class.value(t, beta)
        return np.concatenate(
            [
                -f1.cdf_gradient(t),
                trend[:, np.newaxis] * f2.cdf_gradient(t),
                (self._trend_class.beta_gradient(t, beta) * f2.cdf(t))[
                    :, np.newaxis
                ],
            ],
            axis=1,
        )

    def _split_batch(
        self, params: FloatArray
    ) -> tuple[FloatArray, FloatArray, FloatArray]:
        p = np.asarray(params, dtype=np.float64)
        n1 = self._f1_class.n_params()
        n2 = self._f2_class.n_params()
        return p[:, :n1], p[:, n1 : n1 + n2], p[:, n1 + n2]

    def evaluate_batch(self, times: FloatArray, params: FloatArray) -> FloatArray:
        """Eq. (7) over a stack of problems in one vectorized pass.

        Requires both component distributions to implement the batched
        CDF protocol (:meth:`~repro.distributions.base.LifetimeDistribution.has_batch_cdf`);
        otherwise the base class's per-row loop applies.
        """
        if not (self._f1_class.has_batch_cdf() and self._f2_class.has_batch_cdf()):
            return super().evaluate_batch(times, params)
        t = np.asarray(times, dtype=np.float64)
        p1, p2, beta = self._split_batch(params)
        survival = 1.0 - self._f1_class.cdf_batch(t, p1)
        recovery = self._trend_class.value_batch(t, beta) * self._f2_class.cdf_batch(
            t, p2
        )
        return survival + recovery

    def prediction_jacobian_batch(
        self, times: FloatArray, params: FloatArray
    ) -> FloatArray:
        """Stacked Eq. (7) Jacobian, column-blocked as in
        :meth:`prediction_jacobian`; falls back to the per-row loop when
        a component lacks the batched analytic-gradient protocol."""
        if not (
            self.has_analytic_jacobian
            and self._f1_class.has_batch_cdf()
            and self._f2_class.has_batch_cdf()
        ):
            return super().prediction_jacobian_batch(times, params)
        t = np.asarray(times, dtype=np.float64)
        p1, p2, beta = self._split_batch(params)
        trend = self._trend_class.value_batch(t, beta)
        return np.concatenate(
            [
                -self._f1_class.cdf_gradient_batch(t, p1),
                trend[:, :, np.newaxis] * self._f2_class.cdf_gradient_batch(t, p2),
                (
                    self._trend_class.beta_gradient_batch(t, beta)
                    * self._f2_class.cdf_batch(t, p2)
                )[:, :, np.newaxis],
            ],
            axis=2,
        )

    def components(
        self, times: ArrayLike
    ) -> tuple[FloatArray, FloatArray]:
        """Degradation and recovery components of the bound model.

        Returns ``(a₁(t)(1 − F₁(t)), a₂(t)F₂(t))`` separately, useful
        for plotting and for diagnosing which component dominates.
        """
        t = self._as_times(times)
        p1, p2, beta = self._split(self.params)
        f1 = self._f1_class.from_vector(p1)
        f2 = self._f2_class.from_vector(p2)
        return 1.0 - f1.cdf(t), self._trend_class.value(t, beta) * f2.cdf(t)

    # ------------------------------------------------------------------
    # Initial guesses
    # ------------------------------------------------------------------
    def initial_guesses(self, curve: ResilienceCurve) -> list[tuple[float, ...]]:
        """Seeds built from the curve's trough timing and end level.

        The degradation scale is seeded at the trough time (so the
        survival term has largely decayed by the trough) and the
        recovery scale at both the trough time and the remaining window
        (fast/slow recovery hypotheses). Shape parameters, where the
        distribution has them, start at 1 and 2.
        """
        t = curve.times
        trough_t = max(curve.trough_time - float(t[0]), 1.0)
        window = max(curve.duration, 2.0)
        beta0 = self._trend_class.default_beta(curve.final_performance, window)

        degradation_scales = (trough_t, 0.5 * trough_t)
        recovery_scales = (trough_t, max(window - trough_t, 1.0))
        shape_seeds = (1.0, 2.0)

        guesses: list[tuple[float, ...]] = []
        for d_scale in degradation_scales:
            for r_scale in recovery_scales:
                for shape in shape_seeds:
                    p1 = self._seed_distribution(self._f1_class, d_scale, shape)
                    p2 = self._seed_distribution(self._f2_class, r_scale, shape)
                    guess = p1 + p2 + (beta0,)
                    clipped = tuple(
                        float(np.clip(v, lo, hi))
                        for v, lo, hi in zip(guess, self.lower_bounds, self.upper_bounds)
                    )
                    if clipped not in guesses:
                        guesses.append(clipped)
        return guesses

    @staticmethod
    def _seed_distribution(
        cls: Type[LifetimeDistribution], scale: float, shape: float
    ) -> tuple[float, ...]:
        """Map a (scale, shape) pair onto a distribution's parameters."""
        if cls is Exponential:
            return (scale,)
        if cls is Weibull:
            return (scale, shape)
        seeds: list[float] = []
        for name in cls.param_names:
            if name in ("theta", "alpha"):
                seeds.append(scale)
            elif name == "mu":
                seeds.append(float(np.log(max(scale, 1e-6))))
            elif name in ("k", "beta", "sigma", "b"):
                seeds.append(shape)
            else:
                seeds.append(1.0)
        return tuple(seeds)
